type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a array;
  mutable size : int;
}

(* Capacity above which [clear] releases the buffer instead of scrubbing
   it slot by slot. *)
let shrink_capacity = 256

let create ~cmp = { cmp; data = [||]; size = 0 }

let length h = h.size
let is_empty h = h.size = 0

(* Overwrite a vacated slot so the backing array does not retain dead
   elements — engine handles close over whole subsystems, and a popped
   handle kept live by the array would keep all of that reachable.
   Immediates and floats are not traced by the GC, so only pointer slots
   need scrubbing; the 0 written is never read back (all reads stop at
   [size]). *)
let junk (data : 'a array) i =
  let v = Obj.repr data.(i) in
  if Obj.is_block v && Obj.tag v <> Obj.double_tag then
    data.(i) <- (Obj.magic 0 : 'a)

let grow h x =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = Stdlib.max 16 (2 * cap) in
    let data = Array.make ncap x in
    Array.blit h.data 0 data 0 h.size;
    (* [Array.make] filled the tail with [x]; scrub it so the spare
       capacity does not pin [x] after it is popped. *)
    for i = h.size to ncap - 1 do
      junk data i
    done;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp h.data.(i) h.data.(parent) < 0 then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp h.data.(l) h.data.(!smallest) < 0 then smallest := l;
  if r < h.size && h.cmp h.data.(r) h.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h x =
  grow h x;
  h.data.(h.size) <- x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    junk h.data h.size;
    Some top
  end

let clear h =
  if Array.length h.data > shrink_capacity then h.data <- [||]
  else
    for i = 0 to h.size - 1 do
      junk h.data i
    done;
  h.size <- 0

let to_list h =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (h.data.(i) :: acc) in
  loop (h.size - 1) []
