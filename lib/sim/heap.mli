(** Imperative binary min-heap.

    Backbone of the event queue: [O(log n)] insert and pop-min with a
    user-supplied comparison. Elements compare equal are popped in an
    unspecified order, so callers needing determinism (the engine does)
    must make their comparison total, e.g. by adding a sequence number. *)

type 'a t
(** A mutable min-heap of ['a] values. *)

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp]. *)

val length : 'a t -> int
(** Number of elements currently stored. *)

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Insert an element. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element, or [None] if empty. *)

val peek : 'a t -> 'a option
(** Return the minimum element without removing it. *)

val clear : 'a t -> unit
(** Remove all elements. An oversized backing buffer is released;
    otherwise it is kept (scrubbed) for reuse. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified order (for inspection in tests). *)
