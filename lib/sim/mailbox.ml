type 'a t = {
  queue : 'a Queue.t;
  mutable readers : (unit -> unit) list; (* newest first *)
}

let create () = { queue = Queue.create (); readers = [] }

let wake_one mb =
  match mb.readers with
  | [] -> ()
  | [ only ] ->
      (* Single blocked reader — the overwhelmingly common case on IPC
         inboxes — wakes without the rev/filter list churn below. *)
      mb.readers <- [];
      only ()
  | readers ->
      let oldest = List.hd (List.rev readers) in
      mb.readers <- List.filter (fun r -> r != oldest) readers;
      oldest ()

let send mb v =
  Queue.push v mb.queue;
  wake_one mb

let try_recv mb = Queue.take_opt mb.queue

let length mb = Queue.length mb.queue

let drain mb =
  let rec loop acc =
    match Queue.take_opt mb.queue with
    | None -> List.rev acc
    | Some v -> loop (v :: acc)
  in
  loop []

let rec recv mb =
  if not (Queue.is_empty mb.queue) then Queue.pop mb.queue
  else begin
    Proc.suspend (fun wake ->
        mb.readers <- wake :: mb.readers;
        fun () -> mb.readers <- List.filter (fun r -> r != wake) mb.readers);
    recv mb
  end

let recv_timeout engine mb span =
  let deadline = Time.add (Engine.now engine) span in
  let rec loop () =
    match Queue.take_opt mb.queue with
    | Some v -> Some v
    | None ->
        if Time.(Engine.now engine >= deadline) then None
        else begin
          (* Deregister both wake sources after resuming, whichever fired:
             a stale reader entry would otherwise swallow a later send. *)
          let timer = ref None in
          let wake_ref = ref (fun () -> ()) in
          let deregister () =
            (match !timer with Some h -> Engine.cancel h | None -> ());
            mb.readers <- List.filter (fun r -> r != !wake_ref) mb.readers
          in
          Proc.suspend (fun wake ->
              wake_ref := wake;
              timer := Some (Engine.schedule engine ~at:deadline wake);
              mb.readers <- wake :: mb.readers;
              deregister);
          deregister ();
          loop ()
        end
  in
  loop ()
