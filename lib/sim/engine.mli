(** Discrete-event simulation engine.

    The engine owns the virtual clock and an ordered queue of pending
    events. Events scheduled for the same instant fire in scheduling order
    (FIFO), which together with {!Rng} makes whole-cluster runs
    deterministic. *)

type t
(** One simulation run's clock and event queue. Events are stored in a
    pooled, flat representation: slots recycled through a free list,
    with generation counters guarding stale handles, and a monomorphic
    (time, sequence) int heap — see the implementation notes in
    [engine.ml]. *)

type handle
(** A scheduled event, usable to cancel it before it fires. Handles
    carry a generation counter: cancelling a handle whose pool slot has
    since been recycled is detected and ignored. *)

val create : unit -> t
(** A fresh engine with the clock at {!Time.zero} and no events. *)

val now : t -> Time.t
(** Current virtual time. *)

val schedule : t -> at:Time.t -> (unit -> unit) -> handle
(** [schedule t ~at f] arranges for [f ()] to run at instant [at].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** [schedule_after t d f] is [schedule t ~at:(now t + d) f]. *)

val post : t -> at:Time.t -> (unit -> unit) -> unit
(** [post t ~at f] is [schedule t ~at f] for events that will never be
    cancelled: no handle is materialized, so the fast path allocates
    nothing beyond the caller's closure. *)

val post_after : t -> Time.span -> (unit -> unit) -> unit
(** [post_after t d f] is [post t ~at:(now t + d) f]. *)

val cancel : handle -> unit
(** Prevent a pending event from firing. Cancelling a fired or already
    cancelled event is a no-op. *)

val pending : t -> int
(** Number of live events still queued. O(1): a counter maintained on
    schedule/cancel/fire, not a queue scan. *)

val step : t -> bool
(** Fire the next event, advancing the clock to its instant. Returns
    [false] when the queue is empty. *)

val run : ?until:Time.t -> ?max_steps:int -> t -> unit
(** Fire events until the queue empties, the clock would pass [until], or
    [max_steps] events have fired. With [~until], the clock is left at
    [until] (convenient for sampling at a fixed horizon). *)

val events_fired : t -> int
(** Total events fired so far — exposed for throughput benchmarks. *)
