module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
end

module Summary = struct
  type t = {
    mutable rev_samples : float list;
    mutable n : int;
    mutable sum : float;
    mutable sum_sq : float;
    mutable lo : float;
    mutable hi : float;
    mutable sorted : float array option;
        (* cached sorted view; stale (None) after any [record] *)
  }

  let create () =
    {
      rev_samples = [];
      n = 0;
      sum = 0.;
      sum_sq = 0.;
      lo = infinity;
      hi = neg_infinity;
      sorted = None;
    }

  let record t x =
    t.rev_samples <- x :: t.rev_samples;
    t.n <- t.n + 1;
    t.sum <- t.sum +. x;
    t.sum_sq <- t.sum_sq +. (x *. x);
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x;
    t.sorted <- None

  let count t = t.n
  let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n

  let stddev t =
    if t.n < 2 then nan
    else
      let m = mean t in
      let var = (t.sum_sq /. float_of_int t.n) -. (m *. m) in
      sqrt (Float.max 0. var)

  let min t = if t.n = 0 then nan else t.lo
  let max t = if t.n = 0 then nan else t.hi

  let sorted_samples t =
    match t.sorted with
    | Some a -> a
    | None ->
        let a = Array.of_list t.rev_samples in
        Array.sort Float.compare a;
        t.sorted <- Some a;
        a

  let percentile t p =
    if t.n = 0 then nan
      (* The extremes (and any out-of-range [p]) never need the sorted
         view: [lo]/[hi] are maintained incrementally, and a single
         sample is every percentile of itself. *)
    else if t.n = 1 || p <= 0. then t.lo
    else if p >= 100. then t.hi
    else begin
      let a = sorted_samples t in
      let rank =
        int_of_float (Float.round (p /. 100. *. float_of_int (t.n - 1)))
      in
      a.(Stdlib.min (t.n - 1) (Stdlib.max 0 rank))
    end

  let samples t = List.rev t.rev_samples
end

module Gauge = struct
  type t = {
    engine : Engine.t;
    mutable level : float;
    mutable since : Time.t; (* start of current level *)
    mutable origin : Time.t;
    mutable integral : float; (* level x seconds, up to [since] *)
  }

  let create engine ~initial =
    let now = Engine.now engine in
    { engine; level = initial; since = now; origin = now; integral = 0. }

  let settle t =
    let now = Engine.now t.engine in
    t.integral <- t.integral +. (t.level *. Time.to_sec (Time.sub now t.since));
    t.since <- now

  let set t x =
    settle t;
    t.level <- x

  let value t = t.level

  let time_average t =
    settle t;
    let elapsed = Time.to_sec (Time.sub t.since t.origin) in
    if elapsed <= 0. then t.level else t.integral /. elapsed
end
