(* Pooled, flat event queue.

   The hot loop of every simulation is schedule/fire, so both sides are
   engineered to avoid allocation and polymorphic dispatch:

   - Events live in a slot pool (parallel arrays: generation, action,
     cancelled flag) recycled through a free-list stack. [post] schedules
     without materializing a handle at all; [schedule] returns a 3-field
     handle whose generation counter makes a stale [cancel] — one issued
     against a slot that has since fired and been recycled — a safe
     no-op.

   - The priority queue is a flat binary min-heap over parallel [int]
     arrays keyed by (time in us, sequence number). Comparisons are
     immediate integer compares in a monomorphic loop — no closure
     calls, no boxed keys — and sift operations move the hole instead of
     swapping.

   Cancellation stays O(1): a cancelled slot is only detached from the
   heap lazily when it reaches the top, exactly like the previous
   implementation, but its action is dropped eagerly so the closure (and
   whatever subsystem it closes over) is released at cancel time. *)

type t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable fired : int;
  mutable live_count : int;
      (* live (scheduled, neither cancelled nor fired) events — kept
         incrementally so [pending] is O(1) *)
  (* Event pool, indexed by slot. *)
  mutable p_gen : int array;
  mutable p_act : (unit -> unit) array;
  mutable p_dead : bool array; (* cancelled, awaiting lazy heap removal *)
  mutable free : int array; (* stack of free slot indices *)
  mutable free_len : int;
  mutable pool_cap : int;
  (* Flat binary min-heap on (time_us, seq); h_slot points into the pool. *)
  mutable h_time : int array;
  mutable h_seq : int array;
  mutable h_slot : int array;
  mutable h_len : int;
}

type handle = { owner : t; slot : int; gen : int }

let nop () = ()
let initial_cap = 16

let create () =
  {
    clock = Time.zero;
    next_seq = 0;
    fired = 0;
    live_count = 0;
    p_gen = Array.make initial_cap 0;
    p_act = Array.make initial_cap nop;
    p_dead = Array.make initial_cap false;
    free = Array.init initial_cap (fun i -> initial_cap - 1 - i);
    free_len = initial_cap;
    pool_cap = initial_cap;
    h_time = Array.make initial_cap 0;
    h_seq = Array.make initial_cap 0;
    h_slot = Array.make initial_cap 0;
    h_len = 0;
  }

let now t = t.clock

(* {2 Pool} *)

let grow_pool t =
  let cap = t.pool_cap in
  let ncap = 2 * cap in
  let g = Array.make ncap 0 in
  Array.blit t.p_gen 0 g 0 cap;
  let a = Array.make ncap nop in
  Array.blit t.p_act 0 a 0 cap;
  let d = Array.make ncap false in
  Array.blit t.p_dead 0 d 0 cap;
  t.p_gen <- g;
  t.p_act <- a;
  t.p_dead <- d;
  (* The free stack is empty when we grow; refill it with the new slots,
     descending so the lowest index pops first. *)
  let f = Array.make ncap 0 in
  for i = 0 to cap - 1 do
    f.(i) <- ncap - 1 - i
  done;
  t.free <- f;
  t.free_len <- cap;
  t.pool_cap <- ncap

let alloc_slot t =
  if t.free_len = 0 then grow_pool t;
  let i = t.free_len - 1 in
  t.free_len <- i;
  t.free.(i)

(* Recycle a slot: bump the generation (stale handles die here), drop
   the action so the closure is not retained, return to the free list. *)
let free_slot t slot =
  t.p_gen.(slot) <- t.p_gen.(slot) + 1;
  t.p_act.(slot) <- nop;
  t.p_dead.(slot) <- false;
  t.free.(t.free_len) <- slot;
  t.free_len <- t.free_len + 1

(* {2 Heap} *)

let heap_push t ~time ~seq ~slot =
  let cap = Array.length t.h_time in
  if t.h_len = cap then begin
    let ncap = 2 * cap in
    let ht = Array.make ncap 0 in
    Array.blit t.h_time 0 ht 0 cap;
    let hs = Array.make ncap 0 in
    Array.blit t.h_seq 0 hs 0 cap;
    let hl = Array.make ncap 0 in
    Array.blit t.h_slot 0 hl 0 cap;
    t.h_time <- ht;
    t.h_seq <- hs;
    t.h_slot <- hl
  end;
  let ht = t.h_time and hs = t.h_seq and hl = t.h_slot in
  (* Sift the hole up, moving entries down until the new key fits. *)
  let i = ref t.h_len in
  t.h_len <- t.h_len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pt = ht.(p) in
    if pt > time || (pt = time && hs.(p) > seq) then begin
      ht.(!i) <- pt;
      hs.(!i) <- hs.(p);
      hl.(!i) <- hl.(p);
      i := p
    end
    else continue := false
  done;
  ht.(!i) <- time;
  hs.(!i) <- seq;
  hl.(!i) <- slot

(* Remove the minimum: move the last entry into the root hole and sift
   it down. *)
let heap_discard_min t =
  let n = t.h_len - 1 in
  t.h_len <- n;
  if n > 0 then begin
    let ht = t.h_time and hs = t.h_seq and hl = t.h_slot in
    let time = ht.(n) and seq = hs.(n) and slot = hl.(n) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n && (ht.(r) < ht.(l) || (ht.(r) = ht.(l) && hs.(r) < hs.(l)))
          then r
          else l
        in
        if ht.(c) < time || (ht.(c) = time && hs.(c) < seq) then begin
          ht.(!i) <- ht.(c);
          hs.(!i) <- hs.(c);
          hl.(!i) <- hl.(c);
          i := c
        end
        else continue := false
      end
    done;
    ht.(!i) <- time;
    hs.(!i) <- seq;
    hl.(!i) <- slot
  end

(* {2 Scheduling} *)

let enqueue t ~at action =
  if Time.(at < t.clock) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at %s < now %s" (Time.to_string at)
         (Time.to_string t.clock));
  let slot = alloc_slot t in
  t.p_act.(slot) <- action;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live_count <- t.live_count + 1;
  heap_push t ~time:(Time.to_us at) ~seq ~slot;
  slot

let schedule t ~at action =
  let slot = enqueue t ~at action in
  { owner = t; slot; gen = t.p_gen.(slot) }

let schedule_after t d action = schedule t ~at:(Time.add t.clock d) action
let post t ~at action = ignore (enqueue t ~at action : int)
let post_after t d action = post t ~at:(Time.add t.clock d) action

let cancel h =
  let t = h.owner in
  (* The generation check makes a cancel through a recycled handle a
     no-op: firing or cancelling bumps the slot's generation. *)
  if t.p_gen.(h.slot) = h.gen && not t.p_dead.(h.slot) then begin
    t.p_dead.(h.slot) <- true;
    t.p_act.(h.slot) <- nop;
    t.live_count <- t.live_count - 1
  end

let pending t = t.live_count

(* Discard cancelled events lazily so cancellation stays O(1). Returns
   [true] iff a live event sits at the top of the heap. *)
let rec live_top t =
  if t.h_len = 0 then false
  else begin
    let slot = t.h_slot.(0) in
    if t.p_dead.(slot) then begin
      heap_discard_min t;
      free_slot t slot;
      live_top t
    end
    else true
  end

let fire_top t =
  let slot = t.h_slot.(0) in
  let time = t.h_time.(0) in
  let act = t.p_act.(slot) in
  heap_discard_min t;
  (* Recycle before running: the generation bump makes a late [cancel]
     from inside (or after) the action a no-op rather than a double
     decrement. *)
  free_slot t slot;
  t.live_count <- t.live_count - 1;
  t.clock <- Time.of_us time;
  t.fired <- t.fired + 1;
  act ()

let step t =
  if live_top t then begin
    fire_top t;
    true
  end
  else false

let run ?until ?max_steps t =
  let horizon = match until with None -> max_int | Some u -> Time.to_us u in
  (match max_steps with
  | None ->
      (* The common case: a tight monomorphic loop, no step budget. *)
      while live_top t && t.h_time.(0) <= horizon do
        fire_top t
      done
  | Some m ->
      let steps = ref 0 in
      while !steps < m && live_top t && t.h_time.(0) <= horizon do
        fire_top t;
        incr steps
      done);
  (* Leave the clock at the horizon so samplers observe a full window. *)
  match until with
  | Some u when Time.(t.clock < u) -> t.clock <- u
  | _ -> ()

let events_fired t = t.fired
