type handle = {
  time : Time.t;
  seq : int;
  mutable live : bool;
  action : unit -> unit;
  owner : t;
}

and t = {
  mutable clock : Time.t;
  mutable next_seq : int;
  mutable fired : int;
  mutable live_count : int;
      (* live (scheduled, neither cancelled nor fired) events — kept
         incrementally so [pending] is O(1) *)
  queue : handle Heap.t;
}

let compare_handle a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    clock = Time.zero;
    next_seq = 0;
    fired = 0;
    live_count = 0;
    queue = Heap.create ~cmp:compare_handle;
  }

let now t = t.clock

let schedule t ~at action =
  if Time.(at < t.clock) then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at %s < now %s" (Time.to_string at)
         (Time.to_string t.clock));
  let h = { time = at; seq = t.next_seq; live = true; action; owner = t } in
  t.next_seq <- t.next_seq + 1;
  t.live_count <- t.live_count + 1;
  Heap.push t.queue h;
  h

let schedule_after t d action = schedule t ~at:(Time.add t.clock d) action

let cancel h =
  if h.live then begin
    h.live <- false;
    h.owner.live_count <- h.owner.live_count - 1
  end

let pending t = t.live_count

(* Discard cancelled events lazily so cancellation stays O(1). *)
let rec peek_live t =
  match Heap.peek t.queue with
  | None -> None
  | Some h when not h.live ->
      ignore (Heap.pop t.queue);
      peek_live t
  | Some h -> Some h

let fire t h =
  ignore (Heap.pop t.queue);
  (* A fired event is no longer pending; marking it dead also makes a
     late [cancel] a no-op rather than a double decrement. *)
  h.live <- false;
  t.live_count <- t.live_count - 1;
  t.clock <- h.time;
  t.fired <- t.fired + 1;
  h.action ()

let step t =
  match peek_live t with
  | None -> false
  | Some h ->
      fire t h;
      true

let run ?until ?max_steps t =
  let steps = ref 0 in
  let budget_left () =
    match max_steps with None -> true | Some m -> !steps < m
  in
  let rec loop () =
    if budget_left () then
      match peek_live t with
      | None -> ()
      | Some h -> (
          match until with
          | Some u when Time.(h.time > u) -> ()
          | _ ->
              fire t h;
              incr steps;
              loop ())
  in
  loop ();
  (* Leave the clock at the horizon so samplers observe a full window. *)
  match until with
  | Some u when Time.(t.clock < u) -> t.clock <- u
  | _ -> ()

let events_fired t = t.fired
