(** Simulated time.

    All simulation clocks count integer microseconds since the start of the
    run. Using integers keeps event ordering exact and runs reproducible;
    the finest-grained cost in the paper is the 13 microsecond frozen-test
    overhead (Section 4.1), so microsecond resolution loses nothing. *)

type t
(** An absolute instant, in microseconds since simulation start. *)

type span = t
(** A duration. Spans and instants share a representation; the type alias
    documents intent at use sites. *)

val zero : t
(** The simulation epoch. *)

val of_us : int -> t
(** [of_us n] is the instant/duration of [n] microseconds. *)

val of_ms : float -> t
(** [of_ms x] is [x] milliseconds, rounded to the nearest microsecond. *)

val of_sec : float -> t
(** [of_sec x] is [x] seconds, rounded to the nearest microsecond. *)

val to_us : t -> int
(** Microsecond count. *)

val to_ms : t -> float
(** Millisecond count (exact up to float precision). *)

val to_sec : t -> float
(** Second count. *)

val add : t -> span -> t
(** [add t d] is the instant [d] after [t]. *)

val sub : t -> t -> span
(** [sub a b] is the span from [b] to [a] (may be negative). *)

val mul : span -> int -> span
(** [mul d k] is [d] repeated [k] times. *)

val scale : span -> float -> span
(** [scale d x] is [d] scaled by [x], rounded to the nearest microsecond
    and saturating at the representable range (NaN maps to 0) — so an
    exploding multiplier, e.g. an uncapped exponential backoff, yields
    a huge span rather than an undefined negative one. *)

val compare : t -> t -> int
(** Total order on instants. *)

val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering, e.g. ["13us"], ["210ms"], ["3.000s"]. *)

val to_string : t -> string
(** [to_string t] is [Format.asprintf "%a" pp t]. *)
