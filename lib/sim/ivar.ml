type 'a t = {
  mutable value : 'a option;
  mutable waiters : (unit -> unit) list; (* newest first *)
}

let create () = { value = None; waiters = [] }

let is_filled iv = Option.is_some iv.value

let peek iv = iv.value

let try_fill iv v =
  match iv.value with
  | Some _ -> false
  | None -> (
      iv.value <- Some v;
      match iv.waiters with
      | [] -> true
      | [ only ] ->
          (* One waiter — every kernel send — skips the rev allocation. *)
          iv.waiters <- [];
          only ();
          true
      | waiters ->
          iv.waiters <- [];
          List.iter (fun wake -> wake ()) (List.rev waiters);
          true)

let fill iv v = if not (try_fill iv v) then invalid_arg "Ivar.fill: already filled"

let read iv =
  match iv.value with
  | Some v -> v
  | None -> (
      Proc.suspend (fun wake ->
          iv.waiters <- wake :: iv.waiters;
          fun () -> iv.waiters <- List.filter (fun w -> w != wake) iv.waiters);
      match iv.value with
      | Some v -> v
      | None -> assert false (* woken only by fill *))
