(** Typed, timestamped event traces.

    Subsystems emit {e typed} trace events (IPC packets, migration phase
    transitions, scheduler decisions, frame deliveries); online invariant
    monitors subscribe to the live stream, tests assert on it, and
    examples print it — the quickstart's rendering of the paper's
    Figure 2-1 communication paths is a filtered trace.

    The event type is extensible: each layer declares its own variants
    ([Ethernet.Frame_sent], [Kernel.Ipc_send], ...) and registers a
    {!view} function that renders them into a category, a type tag and a
    flat field list. The tracer itself stays at the bottom of the
    dependency stack and never learns about kernels or frames.

    Events land in a bounded ring buffer (oldest evicted first) and are
    forwarded synchronously to any registered subscribers, so monitors
    observe every event even ones later evicted from the ring. *)

type event = ..
(** The extensible event type. Layers add variants; anything without a
    registered view still traces, rendered opaquely. *)

type event += Text of { category : string; message : string }
(** Free-form legacy events, emitted by {!record} and {!recordf}. *)

(** Scalar field values carried by an event view. *)
type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Span of Time.t  (** Rendered/exported as integer microseconds. *)

type view = {
  v_cat : string;  (** Subsystem tag, e.g. ["ipc"], ["migrate"]. *)
  v_type : string;  (** Variant tag, e.g. ["frame_sent"]. *)
  v_fields : (string * value) list;
}

val register_view : (event -> view option) -> unit
(** Add a viewer to the global registry. Each layer registers one
    function recognizing its own variants (returning [None] for
    everything else) at module initialization. *)

val view : event -> view
(** Render an event through the registry. [Text] events view as their
    category with a single [msg] field; unknown variants render as
    category ["?"]. *)

val message_of : event -> string
(** One-line rendering of an event's fields ("k=v k=v ..."); the verbatim
    message for [Text]. *)

type record = { at : Time.t; seq : int; ev : event }
(** A stamped event: virtual instant plus a per-tracer sequence number
    (dense, starting at 0, never reused). *)

type t

val create : ?capacity:int -> Engine.t -> t
(** A tracer stamping events with the engine's clock. [capacity] bounds
    the ring buffer (default 65536 records). *)

val enabled : t -> bool

val set_enabled : t -> bool -> unit
(** Recording defaults to on; large batch experiments turn it off. When
    disabled, {!emit} is a complete no-op (subscribers included). Hot
    paths should guard event construction with {!enabled}. *)

val emit : t -> event -> unit
(** Stamp and record a typed event, then notify subscribers in
    registration order. No-op when disabled. *)

val on_event : t -> (record -> unit) -> unit
(** Subscribe to the live stream. Subscribers run synchronously inside
    {!emit} and must not emit events themselves. *)

val record : t -> category:string -> string -> unit
(** Append a [Text] entry (no-op when disabled). *)

val recordf :
  t -> category:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant of {!record}. *)

val records : t -> record list
(** Retained records, oldest first. Older events may have been evicted:
    see {!dropped}. *)

val records_between : t -> lo:int -> hi:int -> record list
(** Retained records with [lo <= seq <= hi], oldest first. *)

val seq : t -> int
(** Number of events emitted so far (= next sequence number). *)

val dropped : t -> int
(** Events evicted from the ring so far. *)

val clear : t -> unit

(** {1 Legacy string view}

    The original string-only API, kept for tests and examples: an entry
    is a record rendered through its view. *)

type entry = {
  at : Time.t;  (** Virtual instant of the event. *)
  category : string;  (** Subsystem tag, e.g. ["ipc"], ["migrate"]. *)
  message : string;  (** Human-readable description. *)
}

val entries : t -> entry list
(** All retained events as rendered entries, oldest first. *)

val by_category : t -> string -> entry list
(** Entries whose category matches, oldest first. *)

val pp_entry : Format.formatter -> entry -> unit
(** One-line rendering: ["\[   3.200ms\] ipc: ..."]. *)

val pp_record : Format.formatter -> record -> unit
(** One-line rendering including the sequence number. *)

val dump : Format.formatter -> t -> unit
(** Print all retained events, one per line. *)

(** {1 JSONL export} *)

val jsonl_of_record : record -> string
(** One JSON object on a single line:
    [{"seq":N,"at_us":N,"cat":"...","type":"...",<fields>}]. [Span]
    fields export as integer microseconds. *)

val to_jsonl : ?categories:string list -> t -> string
(** All retained records (optionally restricted to the given view
    categories), one JSON object per line. *)
