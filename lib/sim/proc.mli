(** Simulated lightweight processes (green threads).

    Bodies are plain OCaml functions written in direct style; blocking
    operations ({!sleep}, {!Ivar.read}, {!Mailbox.recv}, ...) suspend the
    underlying OCaml 5 effect continuation and the {!Engine} resumes it at
    the right virtual instant. This lets the V kernel, servers and
    workloads read like straight-line systems code.

    Killing is how the simulation models [DestroyProcess]: a process
    suspended on any blocking operation is discontinued immediately with
    {!Killed_exn}; a process that is currently running is marked doomed and
    dies at its next suspension point. *)

type t
(** A process handle. *)

type exit =
  | Normal  (** The body returned. *)
  | Exn of exn  (** The body raised. *)
  | Killed  (** {!kill} terminated it. *)

exception Killed_exn
(** Raised inside a process being killed, so [Fun.protect] cleanup runs. *)

val spawn : Engine.t -> name:string -> (unit -> unit) -> t
(** [spawn engine ~name body] creates a process that starts running at the
    current virtual instant (after already-queued events). *)

val id : t -> int
(** Unique id, assigned in spawn order from a domain-local counter. *)

val reset_ids : unit -> unit
(** Reset this domain's pid counter. Called per cluster so replica runs
    see identical pid sequences whatever domain executes them. *)

val name : t -> string
(** The name given at spawn, for traces and error messages. *)

val alive : t -> bool
(** [true] until the process finishes or is killed. *)

val status : t -> exit option
(** [Some e] once the process has terminated. *)

val kill : t -> unit
(** Terminate the process. Idempotent. See the module comment for the
    running-process case. *)

val pause : t -> unit
(** Stop the process advancing: any wake-up (timer expiry, message
    arrival, ...) arriving while paused is deferred instead of delivered.
    This is the mechanism beneath freezing a logical host (Section 3.1):
    execution of its processes is suspended while the rest of the
    simulation continues. Idempotent. *)

val unpause : t -> unit
(** Resume a paused process, delivering a deferred wake-up if one arrived
    during the pause. Idempotent. *)

val is_paused : t -> bool

val on_exit : t -> (exit -> unit) -> unit
(** Register a hook run when the process terminates (immediately if it
    already has). *)

val suspend : ((unit -> unit) -> (unit -> unit)) -> unit
(** [suspend register] blocks the calling process. [register wake] must
    arrange for [wake ()] to be called when the process should resume and
    return a cleanup that deregisters the wake source; the cleanup runs if
    the process is killed first. Calling [wake] more than once is safe.
    This is the primitive from which all blocking operations are built. *)

val sleep : Engine.t -> Time.span -> unit
(** Block the calling process for a virtual duration. *)

val yield : Engine.t -> unit
(** Let every other event scheduled for the current instant run first. *)

val join : t -> exit
(** Block until the process terminates and return how. Returns immediately
    if it already has. *)
