(* Minimal JSON support: enough of an emitter and a recursive-descent
   parser for the bench baseline (BENCH_results.json) and the tracer's
   JSONL export, without adding a dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* {1 Emission} *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          emit buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_string buf (Printf.sprintf "\"%s\": " (escape k));
          emit buf ~indent:(indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  emit buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* Single-line form, one JSON value with no trailing newline — the JSONL
   building block. *)
let rec emit_compact buf v =
  match v with
  | Null | Bool _ | Num _ | Str _ -> emit buf ~indent:0 v
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit_compact buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\"%s\":" (escape k));
          emit_compact buf item)
        fields;
      Buffer.add_char buf '}'

let to_compact_string v =
  let buf = Buffer.create 256 in
  emit_compact buf v;
  Buffer.contents buf

(* {1 Parsing} *)

exception Bad of string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
          | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
          | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?'
              | None -> fail "bad \\u escape");
              pos := !pos + 4;
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec items acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          items []
        end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
