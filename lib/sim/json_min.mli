(** Minimal JSON: an emitter and a strict recursive-descent parser.

    Serves the bench baseline ([BENCH_results.json]) and the tracer's
    JSONL export without pulling in a dependency. Numbers are floats;
    integers round-trip exactly up to 2{^53}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Pretty-printed (2-space indent), trailing newline. *)

val to_compact_string : t -> string
(** Single line, no spaces, no trailing newline — for JSONL. *)

val parse : string -> (t, string) result
(** Strict parse of a complete document; errors carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)
