type event = ..
type event += Text of { category : string; message : string }

type value =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Span of Time.t

type view = {
  v_cat : string;
  v_type : string;
  v_fields : (string * value) list;
}

(* Global view registry. Each layer registers its viewer when its module
   initializes; an event can only reach a tracer if its defining module
   is linked, which guarantees the viewer is registered by then. *)
let viewers : (event -> view option) list ref = ref []

let register_view f = viewers := !viewers @ [ f ]

let view ev =
  match ev with
  | Text { category; message } ->
      { v_cat = category; v_type = "text"; v_fields = [ ("msg", Str message) ] }
  | _ ->
      let rec first = function
        | [] -> { v_cat = "?"; v_type = "opaque"; v_fields = [] }
        | f :: rest -> ( match f ev with Some v -> v | None -> first rest)
      in
      first !viewers

let pp_value ppf = function
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.fprintf ppf "%g" f
  | Str s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b
  | Span t -> Format.pp_print_string ppf (Time.to_string t)

let message_of ev =
  match ev with
  | Text { message; _ } -> message
  | _ ->
      let v = view ev in
      Format.asprintf "%s%a" v.v_type
        (fun ppf fields ->
          List.iter
            (fun (k, value) -> Format.fprintf ppf " %s=%a" k pp_value value)
            fields)
        v.v_fields

type record = { at : Time.t; seq : int; ev : event }

(* The ring is struct-of-arrays so [emit] writes three slots instead of
   allocating a [record] per event; records are materialized only when
   the ring is read back (or handed to a subscriber). *)
type t = {
  engine : Engine.t;
  mutable on : bool;
  capacity : int;
  mutable b_at : Time.t array; (* rings; empty until first emit *)
  mutable b_seq : int array;
  mutable b_ev : event array;
  mutable start : int; (* index of oldest retained record *)
  mutable len : int;
  mutable next_seq : int;
  mutable evicted : int;
  mutable subs : (record -> unit) array; (* registration order *)
}

let default_capacity = 65536

(* Ring filler for unused/cleared slots, so scrubbing never retains a
   real event. *)
let blank_ev : event = Text { category = ""; message = "" }

let create ?(capacity = default_capacity) engine =
  if capacity < 1 then invalid_arg "Tracer.create: capacity < 1";
  {
    engine;
    on = true;
    capacity;
    b_at = [||];
    b_seq = [||];
    b_ev = [||];
    start = 0;
    len = 0;
    next_seq = 0;
    evicted = 0;
    subs = [||];
  }

let enabled t = t.on
let set_enabled t on = t.on <- on
let seq t = t.next_seq
let dropped t = t.evicted

let on_event t f = t.subs <- Array.append t.subs [| f |]

let push t ~at ~seq ev =
  if Array.length t.b_ev = 0 then begin
    t.b_at <- Array.make t.capacity Time.zero;
    t.b_seq <- Array.make t.capacity 0;
    t.b_ev <- Array.make t.capacity blank_ev
  end;
  let i =
    if t.len < t.capacity then begin
      let i = (t.start + t.len) mod t.capacity in
      t.len <- t.len + 1;
      i
    end
    else begin
      (* Full: overwrite the oldest slot. *)
      let i = t.start in
      t.start <- (t.start + 1) mod t.capacity;
      t.evicted <- t.evicted + 1;
      i
    end
  in
  t.b_at.(i) <- at;
  t.b_seq.(i) <- seq;
  t.b_ev.(i) <- ev

let emit t ev =
  if t.on then begin
    let at = Engine.now t.engine in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    push t ~at ~seq ev;
    (* Subscribers are rare; the record is boxed only when at least one
       is attached, so the common emit allocates nothing. *)
    let subs = t.subs in
    let n = Array.length subs in
    if n > 0 then begin
      let r = { at; seq; ev } in
      for i = 0 to n - 1 do
        subs.(i) r
      done
    end
  end

let record t ~category message =
  if t.on then emit t (Text { category; message })

(* A disabled tracer must not pay for formatting: [ikfprintf] discards
   the arguments without interpreting the format string. *)
let null_formatter = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let recordf t ~category fmt =
  if t.on then Format.kasprintf (fun message -> record t ~category message) fmt
  else Format.ikfprintf (fun _ -> ()) null_formatter fmt

let nth_record t i =
  let j = (t.start + i) mod t.capacity in
  { at = t.b_at.(j); seq = t.b_seq.(j); ev = t.b_ev.(j) }

let fold_records t f acc =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc (nth_record t i)
  done;
  !acc

let records t = List.rev (fold_records t (fun acc r -> r :: acc) [])

let records_between t ~lo ~hi =
  List.rev
    (fold_records t
       (fun acc r -> if r.seq >= lo && r.seq <= hi then r :: acc else acc)
       [])

let clear t =
  (* Retain the allocated rings — a cleared tracer is usually about to
     fill up again — but scrub the event slots so cleared events are not
     kept reachable. *)
  if Array.length t.b_ev > 0 then Array.fill t.b_ev 0 t.capacity blank_ev;
  t.start <- 0;
  t.len <- 0

(* {2 Legacy string view} *)

type entry = { at : Time.t; category : string; message : string }

let entry_of_record (r : record) =
  { at = r.at; category = (view r.ev).v_cat; message = message_of r.ev }

let entries t =
  List.rev (fold_records t (fun acc r -> entry_of_record r :: acc) [])

let by_category t category =
  List.rev
    (fold_records t
       (fun acc r ->
         let e = entry_of_record r in
         if String.equal e.category category then e :: acc else acc)
       [])

let pp_entry ppf e =
  Format.fprintf ppf "[%10s] %s: %s" (Time.to_string e.at) e.category e.message

let pp_record ppf r =
  Format.fprintf ppf "#%-6d %a" r.seq pp_entry (entry_of_record r)

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)

(* {2 JSONL export} *)

let json_of_value = function
  | Int n -> Json_min.Num (float_of_int n)
  | Float f -> Json_min.Num f
  | Str s -> Json_min.Str s
  | Bool b -> Json_min.Bool b
  | Span s -> Json_min.Num (float_of_int (Time.to_us s))

let jsonl_of_record r =
  let v = view r.ev in
  Json_min.to_compact_string
    (Json_min.Obj
       (("seq", Json_min.Num (float_of_int r.seq))
        :: ("at_us", Json_min.Num (float_of_int (Time.to_us r.at)))
        :: ("cat", Json_min.Str v.v_cat)
        :: ("type", Json_min.Str v.v_type)
        :: List.map (fun (k, value) -> (k, json_of_value value)) v.v_fields))

let to_jsonl ?categories t =
  let keep r =
    match categories with
    | None -> true
    | Some cats -> List.mem (view r.ev).v_cat cats
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      if keep r then begin
        Buffer.add_string buf (jsonl_of_record r);
        Buffer.add_char buf '\n'
      end)
    (records t);
  Buffer.contents buf
