type t = int

type span = t

let zero = 0
let of_us n = n
let of_ms x = int_of_float (Float.round (x *. 1_000.))
let of_sec x = int_of_float (Float.round (x *. 1_000_000.))
let to_us t = t
let to_ms t = float_of_int t /. 1_000.
let to_sec t = float_of_int t /. 1_000_000.
let add = ( + )
let sub = ( - )
let mul = ( * )
(* Saturating: [int_of_float] on an out-of-range float is undefined (it
   wraps to min_int in practice), which turned an exponential-backoff
   overflow into a negative interval — caught by the partition-heal
   fuzz scenario. Callers clamp with [min cap] afterwards, so
   saturation at the integer range is the faithful total answer. *)
let scale d x =
  let f = Float.round (float_of_int d *. x) in
  if Float.is_nan f then 0
  else if f >= float_of_int max_int then max_int
  else if f <= float_of_int min_int then min_int
  else int_of_float f
let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let min = Stdlib.min
let max = Stdlib.max

let pp ppf t =
  let abs = Stdlib.abs t in
  if abs < 1_000 then Format.fprintf ppf "%dus" t
  else if abs < 1_000_000 then Format.fprintf ppf "%.3gms" (to_ms t)
  else Format.fprintf ppf "%.3fs" (to_sec t)

let to_string t = Format.asprintf "%a" pp t
