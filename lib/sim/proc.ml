type exit = Normal | Exn of exn | Killed

exception Killed_exn

type status_repr =
  | Embryo of Engine.handle
  | Running
  | Suspended of suspension
  | Done of exit

and suspension = {
  k : (unit, unit) Effect.Deep.continuation;
  mutable cleanup : unit -> unit;
}

type t = {
  pid : int;
  pname : string;
  mutable state : status_repr;
  mutable doomed : bool;
  mutable paused : bool;
  mutable susp_gen : int;
      (* bumped when a suspension is consumed (woken or killed): a
         straggling wake-up from a source that lost the race — or from a
         timer that outlived the process — compares generations and
         becomes a no-op, replacing a per-suspend [woken] ref cell *)
  mutable deferred : (unit -> unit) option;
      (* wake-up (or embryo start) that arrived while paused *)
  mutable exit_hooks : (exit -> unit) list;
}

type _ Effect.t += Suspend : ((unit -> unit) -> (unit -> unit)) -> unit Effect.t

(* Domain-local pid counter: parallel replica domains must not race on
   it, and [reset_ids] (per cluster) keeps pid sequences identical
   across domain placements. *)
let counter = Domain.DLS.new_key (fun () -> ref 0)

let reset_ids () = Domain.DLS.get counter := 0

let id p = p.pid
let name p = p.pname

let alive p = match p.state with Done _ -> false | _ -> true

let status p = match p.state with Done e -> Some e | _ -> None

let is_paused p = p.paused

let finish p e =
  p.state <- Done e;
  p.deferred <- None;
  let hooks = List.rev p.exit_hooks in
  p.exit_hooks <- [];
  List.iter (fun h -> h e) hooks

let nop () = ()

let spawn engine ~name body =
  let counter = Domain.DLS.get counter in
  incr counter;
  let p =
    {
      pid = !counter;
      pname = name;
      state = Running;
      doomed = false;
      paused = false;
      susp_gen = 0;
      deferred = None;
      exit_hooks = [];
    }
  in
  let rec start () =
    if alive p then begin
      if p.paused then p.deferred <- Some start
      else begin
        p.state <- Running;
        let open Effect.Deep in
        match_with body ()
          {
            retc = (fun () -> finish p Normal);
            exnc =
              (fun e ->
                match e with Killed_exn -> finish p Killed | e -> finish p (Exn e));
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Suspend register ->
                    Some
                      (fun (k : (a, unit) continuation) ->
                        if p.doomed then discontinue k Killed_exn
                        else begin
                          (* A process has at most one outstanding
                             suspension, so one generation counter on
                             [p] replaces the per-suspend [woken] and
                             [cleanup] ref cells: a wake-up whose
                             generation no longer matches is stale. *)
                          let gen = p.susp_gen in
                          let rec wake () =
                            if p.susp_gen = gen then begin
                              if p.paused then p.deferred <- Some wake
                              else begin
                                p.susp_gen <- gen + 1;
                                match p.state with
                                | Suspended _ ->
                                    p.state <- Running;
                                    continue k ()
                                | Embryo _ | Running | Done _ -> ()
                              end
                            end
                          in
                          let s = { k; cleanup = nop } in
                          p.state <- Suspended s;
                          s.cleanup <- register wake
                        end)
                | _ -> None);
          }
      end
    end
  in
  let h = Engine.schedule_after engine Time.zero start in
  p.state <- Embryo h;
  p

let kill p =
  match p.state with
  | Done _ -> ()
  | Embryo h ->
      Engine.cancel h;
      finish p Killed
  | Suspended s ->
      (* Consume the suspension before discontinuing so a wake-up source
         that still holds a reference (e.g. a sleep timer yet to fire)
         sees a stale generation and does nothing. *)
      p.susp_gen <- p.susp_gen + 1;
      s.cleanup ();
      p.state <- Running;
      Effect.Deep.discontinue s.k Killed_exn
  | Running -> p.doomed <- true

let pause p = if alive p then p.paused <- true

let unpause p =
  if p.paused then begin
    p.paused <- false;
    match p.deferred with
    | None -> ()
    | Some wake ->
        p.deferred <- None;
        wake ()
  end

let on_exit p hook =
  match p.state with
  | Done e -> hook e
  | _ -> p.exit_hooks <- hook :: p.exit_hooks

let suspend register = Effect.perform (Suspend register)

(* The timer is posted handle-free: a sleep that outlives its process
   (the process was killed) fires as a stale wake-up, which the
   generation check turns into a no-op — cheaper than materializing a
   cancellable handle for every sleep just for that rare case. *)
let sleep engine span =
  suspend (fun wake ->
      Engine.post_after engine span wake;
      nop)

let yield engine = sleep engine Time.zero

let join p =
  match p.state with
  | Done e -> e
  | _ ->
      let result = ref Normal in
      suspend (fun wake ->
          let hook e =
            result := e;
            wake ()
          in
          p.exit_hooks <- hook :: p.exit_hooks;
          fun () -> p.exit_hooks <- List.filter (fun h -> h != hook) p.exit_hooks);
      !result
