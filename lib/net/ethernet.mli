(** Shared 10 Mbit Ethernet segment.

    The cluster in the paper hangs off a single 10 Mbit Ethernet. We model
    the half-duplex shared medium as a FIFO resource: a frame occupies the
    wire for [bytes / bandwidth]; a frame offered while the wire is busy
    waits its turn (a deterministic stand-in for CSMA/CD backoff, adequate
    at the utilizations the paper reports). Frames are lost independently
    with a configurable probability — the reliability machinery of the V
    IPC layer (retransmission, reply-pending) is exercised against real
    losses, as Section 3.1.3's correctness argument requires. *)

type config = {
  bandwidth_bytes_per_sec : int;  (** Wire rate; 10 Mbit/s = 1 250 000. *)
  propagation : Time.span;  (** Wire end-to-end latency. *)
  min_frame_bytes : int;  (** Small frames are padded, as on Ethernet. *)
  max_frame_bytes : int;  (** Larger sends must be fragmented by callers. *)
  loss_probability : float;  (** Independent per-frame loss. *)
}

val default_config : config
(** 10 Mbit/s, 5 us propagation, 64/1536-byte frame bounds, no loss. *)

type 'p t
(** A segment carrying frames with payloads of type ['p]. *)

type 'p station
(** One attached host interface. *)

(** {1 Typed trace events}

    [seg] names the segment ({!create}'s [seg] label); [frame] is a
    per-segment transmission id, fresh per wire occupation — a bridged
    relay re-sends under a new id on the peer segment, so within one
    segment every [Frame_delivered] names an earlier [Frame_sent]
    (message conservation, checked online by the v_check monitors).
    Deliveries are emitted per recipient, before the receive callback
    runs, and only for stations still attached at delivery time. *)
type Tracer.event +=
  | Frame_sent of {
      seg : int;
      frame : int;
      src : Addr.t;
      dst : Frame.dst;
      bytes : int;
    }
  | Frame_dropped of {
      seg : int;
      frame : int;
      src : Addr.t;
      dst : Frame.dst;
      bytes : int;
    }
  | Frame_delivered of { seg : int; frame : int; dst : Addr.t }
  | Station_attached of { seg : int; addr : Addr.t }
  | Station_detached of { seg : int; addr : Addr.t }

val create : ?config:config -> ?tracer:Tracer.t -> ?seg:int -> Engine.t -> Rng.t -> 'p t
(** A fresh segment. The RNG drives loss decisions only. [tracer]
    receives the typed events above; [seg] (default 0) labels them.
    Bulk occupations ({!occupy}) are not framed and emit nothing. *)

val engine : 'p t -> Engine.t
val config : 'p t -> config

val set_loss : 'p t -> float -> unit
(** Change the loss probability mid-run (failure injection). Applies to
    this segment {e and} every directly bridged peer segment, so a
    cluster-wide loss window behaves uniformly; use {!set_loss_local} for
    per-segment weather. *)

val set_loss_local : 'p t -> float -> unit
(** Change the loss probability of this segment only. *)

val loss : 'p t -> float
(** This segment's current loss probability. *)

val attach : 'p t -> Addr.t -> ('p Frame.t -> unit) -> 'p station
(** [attach t addr rx] connects a station; [rx] runs at delivery time for
    every frame addressed to it. Raises [Invalid_argument] if [addr] is
    already attached. *)

val detach : 'p station -> unit
(** Disconnect; models a host crash or reboot — in-flight frames to it are
    silently dropped, exactly what migration's failure path must survive. *)

val attached : 'p station -> bool

val subscribe : 'p station -> int -> unit
(** Join a multicast group (well-known process groups ride on these). *)

val unsubscribe : 'p station -> int -> unit

val station_addr : 'p station -> Addr.t

val send : 'p t -> 'p Frame.t -> unit
(** Queue a frame for transmission. Asynchronous: returns immediately;
    delivery callbacks fire when the frame clears the wire. Frames above
    [max_frame_bytes] raise [Invalid_argument]. *)

(** {1 Bridged segments}

    The paper's system lives on "one (logical) local network", and its
    Section 6 lists an internet version as work in progress. We model the
    first step: two segments joined by a store-and-forward bridge that
    relays every frame (so the cluster still behaves as one logical
    network) after a forwarding delay, with the frame occupying {e both}
    wires. Broadcast and multicast cross the bridge, so the V rebinding
    and selection machinery keeps working cluster-wide. *)

val bridge : 'p t -> 'p t -> forward_delay:Time.span -> unit
(** Join two segments bidirectionally. Only a single bridge hop is
    supported (frames are never re-forwarded), i.e. topologies are stars
    of at most two segments per path. *)

val sever_bridge : 'p t -> 'p t -> unit
(** Take the bridge between two segments down (network partition): no
    frames cross in either direction until {!heal_bridge}. Frames already
    queued at the bridge when it goes down are dropped. Unbridged pairs
    are a no-op. *)

val heal_bridge : 'p t -> 'p t -> unit
(** Bring a severed bridge back up. Senders re-establish contact through
    the normal retransmission / [Where_is] machinery — the bridge itself
    holds no state to recover. *)

val bridge_up : 'p t -> 'p t -> bool
(** Whether a live bridge currently joins the two segments. *)

val locate : 'p t -> Addr.t -> [ `Local | `Peer of 'p t * Time.span | `Unknown ]
(** Where a station lives relative to this segment — [`Peer] carries the
    remote segment and the bridge delay. Bulk-transfer pacing uses this
    to occupy both wires for cross-segment copies. *)

val occupy : ?not_before:Time.t -> 'p t -> bytes:int -> Time.t * bool
(** [occupy t ~bytes] reserves the medium for one data frame of a bulk
    transfer without delivering a payload, returning the virtual instant
    the frame clears the wire and whether it was lost. Bulk copies
    ({!Transfer}) use this so multi-megabyte address-space copies cost
    thousands of events rather than typed deliveries. [not_before] delays
    the reservation — how a bridged copy occupies the far segment only
    once the frame has actually arrived there. *)

val wire_time : 'p t -> int -> Time.span
(** Time a frame of the given size occupies the wire (after padding). *)

val frames_sent : 'p t -> int
val frames_delivered : 'p t -> int
val frames_dropped : 'p t -> int
val bytes_carried : 'p t -> int
