(** Content digests for pages and image chunks.

    The simulator models page {e identity}, not page bytes: a digest is
    a deterministic fingerprint of what a page's content would be, so
    two pages share a digest exactly when the model says their bytes
    agree. Image-backed pages (code/initialized data never written, and
    the file server's image chunks — same chunking, same key) hash the
    (image, index) pair; untouched active pages are the zero page; any
    written page gets a fresh digest from its per-page write version.

    Every function is a pure function of its arguments — no global
    state — so digests agree across domains and across runs, which the
    deterministic-replay and [-j] merge guarantees require. *)

type t = int
(** A 48-bit digest. Masked well below [max_int] so manifest-wide sums
    (the dedup monitor's conservation check) cannot overflow. *)

val bits : int
(** Width of a digest in bits (48). *)

val string : string -> t
(** Digest of an arbitrary key string. *)

val combine : t -> int -> t
(** Fold one more integer into a digest (order-sensitive). *)

val image_chunk : image:string -> index:int -> t
(** Digest of chunk [index] of program image [image]. Used both by the
    file server (image files are chunked at the page size) and for
    never-written code/data pages of a space created from that image —
    the alignment is what lets an image-cache entry satisfy a later
    migration manifest. *)

val zero_page : page_bytes:int -> t
(** Digest of an all-zero page — every untouched active-data page. *)

val private_page : space:int -> index:int -> version:int -> t
(** Digest of page [index] of address space [space] after its
    [version]'th write. Distinct from every image chunk and from every
    other (space, index, version) triple. *)

val pp : Format.formatter -> t -> unit
