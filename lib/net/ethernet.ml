type config = {
  bandwidth_bytes_per_sec : int;
  propagation : Time.span;
  min_frame_bytes : int;
  max_frame_bytes : int;
  loss_probability : float;
}

let default_config =
  {
    bandwidth_bytes_per_sec = 1_250_000;
    propagation = Time.of_us 5;
    min_frame_bytes = 64;
    max_frame_bytes = 1536;
    loss_probability = 0.;
  }

(* Typed trace events. [seg] identifies the segment, [frame] is a
   per-segment transmission id: a bridged relay is a fresh transmission
   on the peer wire, so per-segment conservation (every delivery names a
   prior send) holds even across the store-and-forward bridge. *)
type Tracer.event +=
  | Frame_sent of {
      seg : int;
      frame : int;
      src : Addr.t;
      dst : Frame.dst;
      bytes : int;
    }
  | Frame_dropped of {
      seg : int;
      frame : int;
      src : Addr.t;
      dst : Frame.dst;
      bytes : int;
    }
  | Frame_delivered of { seg : int; frame : int; dst : Addr.t }
  | Station_attached of { seg : int; addr : Addr.t }
  | Station_detached of { seg : int; addr : Addr.t }

let dst_string = function
  | Frame.Unicast a -> Addr.to_string a
  | Frame.Broadcast -> "*"
  | Frame.Multicast g -> Printf.sprintf "group:%d" g

let () =
  Tracer.register_view (function
    | Frame_sent { seg; frame; src; dst; bytes } ->
        Some
          {
            Tracer.v_cat = "net";
            v_type = "frame_sent";
            v_fields =
              [
                ("seg", Tracer.Int seg);
                ("frame", Int frame);
                ("src", Str (Addr.to_string src));
                ("dst", Str (dst_string dst));
                ("bytes", Int bytes);
              ];
          }
    | Frame_dropped { seg; frame; src; dst; bytes } ->
        Some
          {
            Tracer.v_cat = "net";
            v_type = "frame_dropped";
            v_fields =
              [
                ("seg", Tracer.Int seg);
                ("frame", Int frame);
                ("src", Str (Addr.to_string src));
                ("dst", Str (dst_string dst));
                ("bytes", Int bytes);
              ];
          }
    | Frame_delivered { seg; frame; dst } ->
        Some
          {
            Tracer.v_cat = "net";
            v_type = "frame_delivered";
            v_fields =
              [
                ("seg", Tracer.Int seg);
                ("frame", Int frame);
                ("dst", Str (Addr.to_string dst));
              ];
          }
    | Station_attached { seg; addr } ->
        Some
          {
            Tracer.v_cat = "net";
            v_type = "station_attached";
            v_fields =
              [ ("seg", Tracer.Int seg); ("addr", Str (Addr.to_string addr)) ];
          }
    | Station_detached { seg; addr } ->
        Some
          {
            Tracer.v_cat = "net";
            v_type = "station_detached";
            v_fields =
              [ ("seg", Tracer.Int seg); ("addr", Str (Addr.to_string addr)) ];
          }
    | _ -> None)

type 'p station = {
  net : 'p t;
  addr : Addr.t;
  rx : 'p Frame.t -> unit;
  groups : (int, unit) Hashtbl.t;
  mutable live : bool;
}

and 'p link = { lk_peer : 'p t; lk_delay : Time.span; mutable lk_up : bool }

and 'p t = {
  eng : Engine.t;
  rng : Rng.t;
  mutable cfg : config;
  stations : (int, 'p station) Hashtbl.t;
  mutable roster : 'p station array option;
      (* every attached station, sorted by address — the broadcast
         delivery set, rebuilt lazily after attach/detach instead of
         per frame *)
  group_rosters : (int, 'p station array) Hashtbl.t;
      (* group id -> members sorted by address, invalidated on
         subscribe/unsubscribe/detach *)
  mutable busy_until : Time.t;
  mutable peers : 'p link list; (* bridged segments *)
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  trc : Tracer.t option;
  seg : int;
  mutable next_frame : int;
      (* Frame ids advance on every transmission, traced or not, so a
         run's ids are stable no matter when tracing was toggled. *)
}

let create ?(config = default_config) ?tracer ?(seg = 0) eng rng =
  {
    eng;
    rng;
    cfg = config;
    stations = Hashtbl.create 32;
    roster = None;
    group_rosters = Hashtbl.create 8;
    busy_until = Time.zero;
    peers = [];
    sent = 0;
    delivered = 0;
    dropped = 0;
    bytes = 0;
    trc = tracer;
    seg;
    next_frame = 0;
  }

(* Trace helper: the thunk defers event allocation to the enabled case,
   keeping disabled-tracer runs allocation-free on the frame path. *)
let ev t mk =
  match t.trc with
  | Some trc when Tracer.enabled trc -> Tracer.emit trc (mk ())
  | _ -> ()

let engine t = t.eng
let config t = t.cfg
let set_loss_local t p = t.cfg <- { t.cfg with loss_probability = p }
let loss t = t.cfg.loss_probability

(* Loss windows are a cluster-wide weather condition: apply to this
   segment and every directly bridged one, so a fault plan's loss window
   behaves uniformly on multi-segment clusters. *)
let set_loss t p =
  set_loss_local t p;
  List.iter (fun l -> set_loss_local l.lk_peer p) t.peers

let attach t addr rx =
  let key = Addr.to_int addr in
  if Hashtbl.mem t.stations key then
    invalid_arg (Printf.sprintf "Ethernet.attach: %s already attached" (Addr.to_string addr));
  let s = { net = t; addr; rx; groups = Hashtbl.create 4; live = true } in
  Hashtbl.replace t.stations key s;
  t.roster <- None;
  ev t (fun () -> Station_attached { seg = t.seg; addr });
  s

let detach s =
  s.live <- false;
  s.net.roster <- None;
  Hashtbl.iter (fun g () -> Hashtbl.remove s.net.group_rosters g) s.groups;
  Hashtbl.remove s.net.stations (Addr.to_int s.addr);
  ev s.net (fun () -> Station_detached { seg = s.net.seg; addr = s.addr })

let attached s = s.live

let subscribe s g =
  if not (Hashtbl.mem s.groups g) then begin
    Hashtbl.replace s.groups g ();
    Hashtbl.remove s.net.group_rosters g
  end

let unsubscribe s g =
  if Hashtbl.mem s.groups g then begin
    Hashtbl.remove s.groups g;
    Hashtbl.remove s.net.group_rosters g
  end

let station_addr s = s.addr

(* Hashtbl order is unspecified; rosters are sorted by address so
   delivery order (and thus whole-cluster runs) stays deterministic. *)
let sorted_station_array stations pred =
  Hashtbl.fold (fun _ s acc -> if pred s then s :: acc else acc) stations []
  |> List.sort (fun a b -> Addr.compare a.addr b.addr)
  |> Array.of_list

let roster t =
  match t.roster with
  | Some r -> r
  | None ->
      let r = sorted_station_array t.stations (fun _ -> true) in
      t.roster <- Some r;
      r

let group_roster t g =
  match Hashtbl.find_opt t.group_rosters g with
  | Some r -> r
  | None ->
      let r = sorted_station_array t.stations (fun s -> Hashtbl.mem s.groups g) in
      Hashtbl.replace t.group_rosters g r;
      r

let wire_time t bytes =
  let padded = Stdlib.max bytes t.cfg.min_frame_bytes in
  (* Round up so a frame never takes zero wire time. *)
  let us =
    ((padded * 1_000_000) + t.cfg.bandwidth_bytes_per_sec - 1)
    / t.cfg.bandwidth_bytes_per_sec
  in
  Time.of_us us

(* Reserve the medium FIFO-style and return when this frame clears it. *)
let reserve t bytes =
  let start = Time.max (Engine.now t.eng) t.busy_until in
  let clear = Time.add start (wire_time t bytes) in
  t.busy_until <- clear;
  clear

let occupy ?(not_before = Time.zero) t ~bytes =
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + bytes;
  let start = Time.max (Time.max (Engine.now t.eng) not_before) t.busy_until in
  let clear = Time.add start (wire_time t bytes) in
  t.busy_until <- clear;
  let lost = Rng.bool t.rng t.cfg.loss_probability in
  if lost then t.dropped <- t.dropped + 1;
  (clear, lost)

(* Deliver to each recipient of [frame] without building an intermediate
   list: the cached rosters are iterated directly, skipping the sender
   and stations that died after the roster was built. *)
let iter_recipients t (frame : 'p Frame.t) f =
  let each s =
    if s.live && not (Addr.equal s.addr frame.src) then f s
  in
  match frame.dst with
  | Frame.Unicast a -> (
      match Hashtbl.find_opt t.stations (Addr.to_int a) with
      | Some s -> each s
      | None -> ())
  | Frame.Broadcast -> Array.iter each (roster t)
  | Frame.Multicast g -> Array.iter each (group_roster t g)

let bridge a b ~forward_delay =
  a.peers <- { lk_peer = b; lk_delay = forward_delay; lk_up = true } :: a.peers;
  b.peers <- { lk_peer = a; lk_delay = forward_delay; lk_up = true } :: b.peers

let set_link a b up =
  let flip t other =
    List.iter (fun l -> if l.lk_peer == other then l.lk_up <- up) t.peers
  in
  flip a b;
  flip b a

let sever_bridge a b = set_link a b false
let heal_bridge a b = set_link a b true

let bridge_up a b =
  List.exists (fun l -> l.lk_peer == b && l.lk_up) a.peers

let locate t addr =
  if Hashtbl.mem t.stations (Addr.to_int addr) then `Local
  else
    match
      List.find_opt
        (fun l -> l.lk_up && Hashtbl.mem l.lk_peer.stations (Addr.to_int addr))
        t.peers
    with
    | Some l -> `Peer (l.lk_peer, l.lk_delay)
    | None -> `Unknown

(* Should this frame be relayed onto a peer segment? Unicasts cross only
   toward their destination; broadcast and multicast flood (the bridge
   keeps the cluster "one logical network"). *)
let crosses_to t peer (frame : 'p Frame.t) =
  match frame.Frame.dst with
  | Frame.Unicast a ->
      (not (Hashtbl.mem t.stations (Addr.to_int a)))
      && Hashtbl.mem peer.stations (Addr.to_int a)
  | Frame.Broadcast | Frame.Multicast _ -> true

let rec send_on ?(forwarded = false) t (frame : 'p Frame.t) =
  if frame.Frame.bytes > t.cfg.max_frame_bytes then
    invalid_arg
      (Printf.sprintf "Ethernet.send: frame of %d bytes exceeds maximum %d"
         frame.Frame.bytes t.cfg.max_frame_bytes);
  t.sent <- t.sent + 1;
  t.bytes <- t.bytes + frame.Frame.bytes;
  let fid = t.next_frame in
  t.next_frame <- t.next_frame + 1;
  (* The per-frame trace guards are inlined (not routed through [ev]) so
     an untraced send allocates no event-constructor thunk. *)
  let tracing =
    match t.trc with Some trc -> Tracer.enabled trc | None -> false
  in
  if tracing then
    ev t (fun () ->
        Frame_sent
          {
            seg = t.seg;
            frame = fid;
            src = frame.Frame.src;
            dst = frame.Frame.dst;
            bytes = frame.Frame.bytes;
          });
  let clear = reserve t frame.Frame.bytes in
  if Rng.bool t.rng t.cfg.loss_probability then begin
    t.dropped <- t.dropped + 1;
    if tracing then
      ev t (fun () ->
          Frame_dropped
            {
              seg = t.seg;
              frame = fid;
              src = frame.Frame.src;
              dst = frame.Frame.dst;
              bytes = frame.Frame.bytes;
            })
  end
  else begin
    let deliver_at = Time.add clear t.cfg.propagation in
    (* One engine event per frame, fanning out to every recipient inside
       the action; deliveries are never cancelled, so [post] skips the
       handle. *)
    Engine.post t.eng ~at:deliver_at (fun () ->
        iter_recipients t frame (fun s ->
            t.delivered <- t.delivered + 1;
            (match t.trc with
            | Some trc when Tracer.enabled trc ->
                Tracer.emit trc
                  (Frame_delivered { seg = t.seg; frame = fid; dst = s.addr })
            | _ -> ());
            s.rx frame));
    (* Store-and-forward relay onto bridged segments: a single hop, after
       the frame has cleared this wire plus the bridge delay. *)
    if not forwarded then
      List.iter
        (fun l ->
          (* The link state is sampled when the frame reaches the bridge:
             a frame in flight when the partition starts is lost, exactly
             like a frame on a real severed wire. *)
          if crosses_to t l.lk_peer frame then
            Engine.post t.eng
              ~at:(Time.add deliver_at l.lk_delay)
              (fun () ->
                if l.lk_up then send_on ~forwarded:true l.lk_peer frame))
        t.peers
  end

let send t frame = send_on t frame

let frames_sent t = t.sent
let frames_delivered t = t.delivered
let frames_dropped t = t.dropped
let bytes_carried t = t.bytes
