(* Content digests for pages and image chunks.

   The simulator never stores page contents, so a "digest" here is a
   deterministic synthetic fingerprint of what the content *would* be:
   image-backed pages hash the (image name, chunk index) pair, untouched
   active pages hash as the zero page, and written pages hash the
   (space id, page index, write version) triple so every store produces
   a fresh, globally unique digest. Two pages collide exactly when the
   model says their bytes agree, which is the property every dedup path
   relies on.

   Digests are masked to 48 bits so sums over whole manifests (the
   dedup monitor adds thousands of them) stay far below [max_int] on
   64-bit OCaml. *)

type t = int

let bits = 48
let mask = (1 lsl bits) - 1

(* FNV-1a over the string (32-bit constants so literals fit OCaml's
   63-bit ints), then a splitmix-style avalanche: the structured inputs
   below differ in few bits, and the multiply-xor-shift rounds spread
   them across the whole word. Native-int multiplication wraps, which
   is deterministic — exactly what we need across domains. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193) s;
  !h

let avalanche x =
  let x = x lxor (x lsr 31) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x27220A95 in
  (x lxor (x lsr 32)) land mask

let combine h x = avalanche ((h * 0x100000001B3) lxor x)

let string s = avalanche (fnv1a s)

let image_chunk ~image ~index = combine (combine (string image) 1) index

let zero_page ~page_bytes = combine (combine (string "\000zero") 2) page_bytes

let private_page ~space ~index ~version =
  combine (combine (combine (combine (string "\000priv") 3) space) index) version

let pp ppf d = Format.fprintf ppf "%012x" d
