let seeded_jobs ~reps ~base_seed f =
  List.init reps (fun i () -> f ~seed:(base_seed + i))

type exec_result = {
  er_host : string;
  er_select : Time.span option;
  er_setup : Time.span;
  er_load : Time.span;
  er_total : Time.span;
}

let exec_result_to_json r =
  Json_min.Obj
    [
      ("host", Json_min.Str r.er_host);
      ( "select_ms",
        match r.er_select with
        | Some s -> Json_min.Num (Time.to_ms s)
        | None -> Json_min.Null );
      ("setup_ms", Json_min.Num (Time.to_ms r.er_setup));
      ("load_ms", Json_min.Num (Time.to_ms r.er_load));
      ("total_ms", Json_min.Num (Time.to_ms r.er_total));
    ]

let horizon_run ?(slack = Time.of_sec 200.) cl =
  Cluster.run cl ~until:(Time.add (Cluster.now cl) slack)

let remote_exec cl ?(ws = 0) ?(target = Remote_exec.Any) ~prog () =
  let result = ref (Error "experiment did not complete") in
  ignore
    (Cluster.shell cl ~ws ~name:"shell" (fun ctx ->
         match Remote_exec.exec ctx ~prog ~target with
         | Error e -> result := Error e
         | Ok h ->
             result :=
               Ok
                 {
                   er_host = h.Remote_exec.h_host;
                   er_select = h.Remote_exec.h_timings.Remote_exec.t_select;
                   er_setup = h.Remote_exec.h_timings.Remote_exec.t_setup;
                   er_load = h.Remote_exec.h_timings.Remote_exec.t_load;
                   er_total = h.Remote_exec.h_timings.Remote_exec.t_total;
                 };
             ignore (Remote_exec.wait ctx h)));
  horizon_run cl;
  !result

(* Locate the program record behind an execution handle. *)
let find_program cl (h : Remote_exec.handle) =
  match Cluster.find_workstation cl h.Remote_exec.h_host with
  | None -> None
  | Some w ->
      Progtable.find (Program_manager.table w.Cluster.ws_pm) h.Remote_exec.h_lh

let dirty_rate cl ~prog ~window ~reps ?(warmup = Time.of_sec 1.) () =
  let eng = Cluster.engine cl in
  let samples = ref [] in
  let failure = ref None in
  ignore
    (Cluster.shell cl ~ws:0 ~name:"sampler" (fun ctx ->
         let rec collect need =
           if need > 0 then begin
             match Remote_exec.exec ctx ~prog ~target:Remote_exec.Local with
             | Error e -> failure := Some e
             | Ok h -> (
                 match find_program cl h with
                 | None -> failure := Some "program record not found"
                 | Some p ->
                     Proc.sleep eng warmup;
                     let rec windows need =
                       if need > 0 then begin
                         ignore (Logical_host.clear_dirty p.Progtable.p_lh);
                         Proc.sleep eng window;
                         match p.Progtable.p_status with
                         | Progtable.Running | Progtable.Migrating
                         | Progtable.Suspended ->
                             samples :=
                               (float_of_int
                                  (Logical_host.dirty_bytes p.Progtable.p_lh)
                               /. 1024.)
                               :: !samples;
                             windows (need - 1)
                         | Progtable.Done _ ->
                             (* Finished mid-window: relaunch for the rest. *)
                             need
                       end
                       else 0
                     in
                     let left = windows need in
                     ignore (Remote_exec.wait ctx h);
                     collect left)
           end
         in
         collect reps));
  horizon_run cl ~slack:(Time.of_sec 600.);
  match (!failure, !samples) with
  | Some e, _ -> Error e
  | None, [] -> Error "no full windows observed"
  | None, xs ->
      Ok (List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs))

let dirty_rate_jobs ?(workstations = 2) ~base_seed ~prog ~window ~reps () =
  seeded_jobs ~reps ~base_seed (fun ~seed ->
      let cl = Cluster.create ~seed ~workstations () in
      dirty_rate cl ~prog ~window ~reps:1 ())

let migrate_program cl ?(ws = 0) ?(strategy = Protocol.Precopy)
    ?(run_for = Time.of_sec 3.) ?(extra_processes = 0) ~prog () =
  let eng = Cluster.engine cl in
  let result = ref (Error "experiment did not complete") in
  ignore
    (Cluster.shell cl ~ws ~name:"shell" (fun ctx ->
         let k = Context.kernel ctx and self = Context.self ctx in
         match Remote_exec.exec ctx ~prog ~target:Remote_exec.Any with
         | Error e -> result := Error ("exec: " ^ e)
         | Ok h -> (
             (match (find_program cl h, Cluster.find_workstation cl h.Remote_exec.h_host) with
             | Some p, Some host_ws ->
                 for i = 1 to extra_processes do
                   ignore
                     (Kernel.spawn_process host_ws.Cluster.ws_kernel
                        p.Progtable.p_lh
                        ~name:(Printf.sprintf "aux%d" i)
                        (fun _ -> Proc.sleep eng (Time.of_sec 86_400.)))
                 done
             | _ -> ());
             Proc.sleep eng run_for;
             (* migrateprog addresses the manager by its own stable pid
                (obtained at selection time), not through the program's
                local-group id: the manager stays put when the program
                moves, and a non-idempotent request must keep talking to
                the host actually running it. *)
             let stable_pm =
               match Cluster.find_workstation cl h.Remote_exec.h_host with
               | Some w -> Program_manager.pid w.Cluster.ws_pm
               | None -> Ids.program_manager_of h.Remote_exec.h_lh
             in
             match
               Kernel.send k ~src:self ~dst:stable_pm
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = Some h.Remote_exec.h_lh;
                         dest = None;
                         force_destroy = false;
                         strategy;
                       }))
             with
             | Ok { Message.body = Protocol.Pm_migrated [ o ]; _ } ->
                 result := Ok o
             | Ok { Message.body = Protocol.Pm_migrated os; _ } ->
                 result :=
                   Error
                     (Printf.sprintf "expected one outcome, got %d"
                        (List.length os))
             | Ok { Message.body = Protocol.Pm_migrate_failed m; _ } ->
                 result := Error m
             | Ok _ -> result := Error "malformed migrate reply"
             | Error e ->
                 result := Error (Format.asprintf "%a" Kernel.pp_send_error e))));
  horizon_run cl;
  !result

let cluster_ps (ctx : Context.t) =
  let k = Context.kernel ctx in
  let c =
    Kernel.send_group k ~src:(Context.self ctx)
      ~group:Ids.program_manager_group
      (Message.make Protocol.Pm_list_programs)
  in
  let replies =
    Kernel.collect_within k c ~window:(Context.cfg ctx).Config.select_timeout
  in
  List.filter_map
    (fun ((pm : Ids.pid), (m : Message.t)) ->
      match m.Message.body with
      | Protocol.Pm_programs { host; programs; guests = _ } ->
          ignore pm;
          Some (host, programs)
      | _ -> None)
    replies

let copy_rate cl ~bytes =
  let eng = Cluster.engine cl in
  let w = Cluster.workstation cl 0 in
  let span = ref Time.zero in
  ignore
    (Cluster.user cl ~ws:0 ~name:"copier" (fun _ _ ->
         let t0 = Engine.now eng in
         Kernel.bulk_transfer w.Cluster.ws_kernel ~bytes;
         span := Time.sub (Engine.now eng) t0));
  horizon_run cl;
  !span

let kernel_op_latency cl ~samples =
  let eng = Cluster.engine cl in
  let w = Cluster.workstation cl 0 in
  let k = w.Cluster.ws_kernel in
  let total = ref Time.zero in
  ignore
    (Cluster.user cl ~ws:0 ~name:"prober" (fun _ self ->
         let target = Ids.kernel_server_of (Logical_host.id (Kernel.host_lh k)) in
         for _ = 1 to samples do
           let t0 = Engine.now eng in
           ignore (Kernel.send k ~src:self ~dst:target (Message.make Kernel.Ks_ping));
           total := Time.add !total (Time.sub (Engine.now eng) t0)
         done));
  horizon_run cl;
  float_of_int (Time.to_us !total) /. float_of_int samples

(* {1 Usage} *)

type usage_params = {
  u_horizon : Time.span;
  u_job_rate_per_sec : float;
  u_owner : Arrivals.Owner.params;
  u_progs : string list;
}

let default_usage_params =
  {
    u_horizon = Time.of_sec 600.;
    u_job_rate_per_sec = 0.1;
    u_owner = Arrivals.Owner.default;
    u_progs = [ "cc68"; "preprocessor"; "assembler"; "make"; "tex" ];
  }

type usage_stats = {
  us_submitted : int;
  us_honored : int;
  us_refused : int;
  us_completed : int;
  us_preemptions : int;
  us_preempt_destroyed : int;
  us_mean_idle : float;
  us_owner_active_fraction : float;
  us_mean_freeze_ms : float;
}

let usage_to_json s =
  Json_min.Obj
    [
      ("submitted", Json_min.Num (float_of_int s.us_submitted));
      ("honored", Json_min.Num (float_of_int s.us_honored));
      ("refused", Json_min.Num (float_of_int s.us_refused));
      ("completed", Json_min.Num (float_of_int s.us_completed));
      ("preemptions", Json_min.Num (float_of_int s.us_preemptions));
      ( "preempt_destroyed",
        Json_min.Num (float_of_int s.us_preempt_destroyed) );
      ("mean_idle", Json_min.Num s.us_mean_idle);
      ("owner_active_fraction", Json_min.Num s.us_owner_active_fraction);
      ("mean_freeze_ms", Json_min.Num s.us_mean_freeze_ms);
    ]

let pp_usage ppf s =
  Format.fprintf ppf
    "@[<v>jobs: %d submitted, %d honored, %d refused, %d completed@ \
     preemptions: %d migrated, %d destroyed, mean freeze %.1f ms@ \
     workstations: %.1f%% idle, owners active %.1f%% of the time@]"
    s.us_submitted s.us_honored s.us_refused s.us_completed s.us_preemptions
    s.us_preempt_destroyed s.us_mean_freeze_ms (100. *. s.us_mean_idle)
    (100. *. s.us_owner_active_fraction)

(* The owner of a workstation: an on/off editing session. While active,
   the machine stops volunteering and any resident guests are preempted
   with migrateprog -n; editing itself is a light foreground CPU load
   that the priority scheduler serves ahead of guests. *)
let install_owner cl w params ~preempted ~destroyed ~freeze_ms =
  let eng = Cluster.engine cl in
  let rng = Cluster.rng cl in
  let pm = w.Cluster.ws_pm in
  let k = w.Cluster.ws_kernel in
  let active_gauge = Stats.Gauge.create eng ~initial:0. in
  let reclaim () =
    ignore
      (Cluster.user cl ~ws:w.Cluster.ws_index ~name:"owner-shell"
         (fun k self ->
           let before = Kernel.guest_count k in
           if before > 0 then
             match
               Kernel.send k ~src:self ~dst:(Program_manager.pid pm)
                 (Message.make
                    (Protocol.Pm_migrate
                       {
                         lh = None;
                         dest = None;
                         force_destroy = true;
                         strategy =
                           Protocol.strategy_of_config
                             (Cluster.cfg cl).Config.strategy;
                       }))
             with
             | Ok { Message.body = Protocol.Pm_migrated outcomes; _ } ->
                 let n = List.length outcomes in
                 preempted := !preempted + n;
                 destroyed := !destroyed + Stdlib.max 0 (before - n);
                 List.iter
                   (fun o ->
                     freeze_ms :=
                       Time.to_ms (Protocol.freeze_span o) :: !freeze_ms)
                   outcomes
             | Ok _ | Error _ -> ()))
  in
  let owner =
    Arrivals.Owner.start eng rng params ~on_transition:(fun active ->
        Stats.Gauge.set active_gauge (if active then 1. else 0.);
        Program_manager.set_accepting pm (not active);
        if active then reclaim ())
  in
  (* Editing load: duty-cycled foreground computation while active. *)
  ignore
    (Proc.spawn eng ~name:(Kernel.host_name k ^ ":owner") (fun () ->
        let quantum = (Cluster.cfg cl).Config.os.Os_params.cpu_quantum in
        let rec loop () =
          if Arrivals.Owner.active owner then begin
            Cpu.compute (Kernel.cpu k) ~priority:Cpu.Foreground quantum;
            let idle_gap =
              Time.scale quantum
                ((1. /. Float.max 0.01 params.Arrivals.Owner.active_cpu_fraction)
                -. 1.)
            in
            Proc.sleep eng idle_gap
          end
          else Proc.sleep eng (Time.of_ms 200.);
          loop ()
        in
        loop ()));
  active_gauge

let usage cl p =
  let eng = Cluster.engine cl in
  let submitted = ref 0
  and honored = ref 0
  and refused = ref 0
  and completed = ref 0
  and preempted = ref 0
  and destroyed = ref 0
  and freeze_ms = ref [] in
  let gauges =
    List.map
      (fun w -> install_owner cl w p.u_owner ~preempted ~destroyed ~freeze_ms)
      (Cluster.workstations cl)
  in
  let progs = Array.of_list p.u_progs in
  let n_ws = Cluster.size cl in
  Arrivals.poisson_stream eng (Cluster.rng cl)
    ~rate_per_sec:p.u_job_rate_per_sec
    ~until:p.u_horizon
    (fun j ->
      let ws = j mod n_ws in
      let prog = progs.(j mod Array.length progs) in
      incr submitted;
      ignore
        (Cluster.shell cl ~ws ~name:"job-shell" (fun ctx ->
             match Remote_exec.exec ctx ~prog ~target:Remote_exec.Any with
             | Error _ -> incr refused
             | Ok h -> (
                 incr honored;
                 match Remote_exec.wait ctx h with
                 | Ok _ -> incr completed
                 | Error _ -> ()))));
  Cluster.run cl ~until:p.u_horizon;
  let mean_idle =
    let xs =
      List.map
        (fun w -> 1. -. Cpu.busy_fraction (Kernel.cpu w.Cluster.ws_kernel))
        (Cluster.workstations cl)
    in
    List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  let owner_active =
    List.fold_left (fun a g -> a +. Stats.Gauge.time_average g) 0. gauges
    /. float_of_int (List.length gauges)
  in
  let mean_freeze =
    match !freeze_ms with
    | [] -> 0.
    | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
  in
  {
    us_submitted = !submitted;
    us_honored = !honored;
    us_refused = !refused;
    us_completed = !completed;
    us_preemptions = !preempted;
    us_preempt_destroyed = !destroyed;
    us_mean_idle = mean_idle;
    us_owner_active_fraction = owner_active;
    us_mean_freeze_ms = mean_freeze;
  }
