(* Typed trace event, one per injected action (window edges included),
   so monitors and post-mortems can correlate violations with the fault
   that provoked them. *)
type Tracer.event += Fault_injected of { kind : string; detail : string }

let () =
  Tracer.register_view (function
    | Fault_injected { kind; detail } ->
        Some
          {
            Tracer.v_cat = "fault";
            v_type = "injected";
            v_fields = [ ("kind", Tracer.Str kind); ("detail", Str detail) ];
          }
    | _ -> None)

type event =
  | Crash_host of { host : string; at : Time.t }
  | Reboot_host of { host : string; at : Time.t }
  | Loss_window of { p : float; start : Time.t; stop : Time.t }
  | Partition_bridge of { start : Time.t; stop : Time.t }
  | Slow_host of { host : string; factor : float; start : Time.t; stop : Time.t }

type plan = event list

let pp_event ppf = function
  | Crash_host { host; at } ->
      Format.fprintf ppf "crash %s at %s" host (Time.to_string at)
  | Reboot_host { host; at } ->
      Format.fprintf ppf "reboot %s at %s" host (Time.to_string at)
  | Loss_window { p; start; stop } ->
      Format.fprintf ppf "loss %.4f over %s-%s" p (Time.to_string start)
        (Time.to_string stop)
  | Partition_bridge { start; stop } ->
      Format.fprintf ppf "partition over %s-%s" (Time.to_string start)
        (Time.to_string stop)
  | Slow_host { host; factor; start; stop } ->
      Format.fprintf ppf "slow %s x%.1f over %s-%s" host factor
        (Time.to_string start) (Time.to_string stop)

let pp_plan ppf plan =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
    pp_event ppf plan

(* {2 Parsing}

   One event per ';'-separated clause, times in (virtual) seconds:

     crash:ws2@4.5        reboot:ws2@9
     loss:0.02@2-10       partition@3-6        slow:ws1x4@0-20 *)

let parse_err fmt = Printf.ksprintf (fun m -> Error m) fmt

let float_of spec s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Ok f
  | None -> parse_err "fault %S: %S is not a number" spec s

let span2 spec s =
  match String.split_on_char '-' (String.trim s) with
  | [ a; b ] ->
      Result.bind (float_of spec a) (fun start ->
          Result.bind (float_of spec b) (fun stop ->
              if stop <= start then
                parse_err "fault %S: window %s is empty" spec s
              else Ok (Time.of_sec start, Time.of_sec stop)))
  | _ -> parse_err "fault %S: expected T1-T2, got %S" spec s

let parse_clause spec =
  let kind, arg =
    (* A clause is KIND:ARG, except 'partition@T1-T2' has no colon — split
       on whichever of ':' / '@' comes first. *)
    let cut i = (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1)) in
    match (String.index_opt spec ':', String.index_opt spec '@') with
    | Some i, Some j when j < i -> cut j
    | Some i, _ -> cut i
    | None, Some j -> cut j
    | None, None -> (spec, "")
  in
  let host_at verb k =
    match String.split_on_char '@' arg with
    | [ host; at ] when String.trim host <> "" ->
        Result.map
          (fun t -> k (String.trim host) (Time.of_sec t))
          (float_of spec at)
    | _ -> parse_err "fault %S: expected %s:HOST@T" spec verb
  in
  match String.trim kind with
  | "crash" -> host_at "crash" (fun host at -> Crash_host { host; at })
  | "reboot" -> host_at "reboot" (fun host at -> Reboot_host { host; at })
  | "loss" -> (
      match String.split_on_char '@' arg with
      | [ p; w ] ->
          Result.bind (float_of spec p) (fun p ->
              if p < 0. || p > 1. then
                parse_err "fault %S: loss probability %g out of [0,1]" spec p
              else
                Result.map
                  (fun (start, stop) -> Loss_window { p; start; stop })
                  (span2 spec w))
      | _ -> parse_err "fault %S: expected loss:P@T1-T2" spec)
  | "partition" -> (
      (* Both 'partition@T1-T2' and 'partition:T1-T2'. *)
      match span2 spec arg with
      | Ok (start, stop) -> Ok (Partition_bridge { start; stop })
      | Error _ -> parse_err "fault %S: expected partition@T1-T2" spec)
  | "slow" -> (
      match String.split_on_char '@' arg with
      | [ hf; w ] -> (
          match String.rindex_opt hf 'x' with
          | Some i ->
              let host = String.trim (String.sub hf 0 i) in
              let f = String.sub hf (i + 1) (String.length hf - i - 1) in
              Result.bind (float_of spec f) (fun factor ->
                  if factor < 1. then
                    parse_err "fault %S: slowdown factor %g < 1" spec factor
                  else if host = "" then
                    parse_err "fault %S: missing host" spec
                  else
                    Result.map
                      (fun (start, stop) ->
                        Slow_host { host; factor; start; stop })
                      (span2 spec w))
          | None -> parse_err "fault %S: expected slow:HOSTxF@T1-T2" spec)
      | _ -> parse_err "fault %S: expected slow:HOSTxF@T1-T2" spec)
  | k -> parse_err "fault %S: unknown kind %S" spec k

let parse s =
  let clauses =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  if clauses = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc c ->
        Result.bind acc (fun evs ->
            Result.map (fun e -> e :: evs) (parse_clause c)))
      (Ok []) clauses
    |> Result.map List.rev

(* {2 Installation}

   The plan is compiled onto the engine as ordinary scheduled events.
   Faults cannot depend on the cluster (the cluster depends on faults to
   accept a plan at creation), so each action is a callback the cluster
   wires to the right subsystem. *)

type hooks = {
  h_crash : string -> unit;
  h_reboot : string -> unit;
  h_loss : float -> unit;  (** Set the cluster-wide frame-loss probability. *)
  h_base_loss : unit -> float;
      (** The probability to restore when a loss window closes. *)
  h_partition : up:bool -> unit;
      (** Sever ([up:false]) or heal ([up:true]) the inter-segment bridge. *)
  h_slow : string -> float -> unit;
}

type t = { mutable injected : int }

let injected t = t.injected

let install eng trc hooks plan =
  let t = { injected = 0 } in
  let fire kind fmt =
    Format.kasprintf
      (fun detail ->
        t.injected <- t.injected + 1;
        if Tracer.enabled trc then
          Tracer.emit trc (Fault_injected { kind; detail }))
      fmt
  in
  let at when_ f = ignore (Engine.schedule eng ~at:when_ f) in
  List.iter
    (function
      | Crash_host { host; at = when_ } ->
          at when_ (fun () ->
              fire "crash" "%s" host;
              hooks.h_crash host)
      | Reboot_host { host; at = when_ } ->
          at when_ (fun () ->
              fire "reboot" "%s" host;
              hooks.h_reboot host)
      | Loss_window { p; start; stop } ->
          at start (fun () ->
              fire "loss" "window opens: p=%.4f" p;
              hooks.h_loss p);
          at stop (fun () ->
              let base = hooks.h_base_loss () in
              fire "loss" "window closes: p=%.4f" base;
              hooks.h_loss base)
      | Partition_bridge { start; stop } ->
          at start (fun () ->
              fire "partition" "bridge severed";
              hooks.h_partition ~up:false);
          at stop (fun () ->
              fire "partition" "bridge healed";
              hooks.h_partition ~up:true)
      | Slow_host { host; factor; start; stop } ->
          at start (fun () ->
              fire "slow" "%s x%.1f" host factor;
              hooks.h_slow host factor);
          at stop (fun () ->
              fire "slow" "%s ends" host;
              hooks.h_slow host 1.0))
    plan;
  t
