(* Typed trace event, one per injected action (window edges included),
   so monitors and post-mortems can correlate violations with the fault
   that provoked them. *)
type Tracer.event += Fault_injected of { kind : string; detail : string }

let () =
  Tracer.register_view (function
    | Fault_injected { kind; detail } ->
        Some
          {
            Tracer.v_cat = "fault";
            v_type = "injected";
            v_fields = [ ("kind", Tracer.Str kind); ("detail", Str detail) ];
          }
    | _ -> None)

type event =
  | Crash_host of { host : string; at : Time.t }
  | Reboot_host of { host : string; at : Time.t }
  | Loss_window of { p : float; start : Time.t; stop : Time.t }
  | Partition_bridge of { start : Time.t; stop : Time.t }
  | Slow_host of { host : string; factor : float; start : Time.t; stop : Time.t }
  | Flaky_host of { host : string; start : Time.t; stop : Time.t }
  | Crash_rack of { hosts : string list; at : Time.t }

type plan = event list

let kind_of_event = function
  | Crash_host _ -> "crash"
  | Reboot_host _ -> "reboot"
  | Loss_window _ -> "loss"
  | Partition_bridge _ -> "partition"
  | Slow_host _ -> "slow"
  | Flaky_host _ -> "flaky"
  | Crash_rack _ -> "crashrack"

let all_kinds =
  [ "crash"; "reboot"; "loss"; "partition"; "slow"; "flaky"; "crashrack" ]

let declared_kinds plan =
  List.sort_uniq String.compare (List.map kind_of_event plan)

(* {2 Canonical printing}

   [pp_event] emits exactly the [--faults] clause syntax [parse]
   accepts, so a plan survives a print/parse round trip unchanged.
   Times print as seconds at full microsecond precision (the internal
   resolution) with trailing zeros trimmed — [Time.of_sec] rounds to
   the nearest microsecond, so re-parsing recovers the same instant. *)

let secs t =
  let us = Time.to_us t in
  let s = Printf.sprintf "%d.%06d" (us / 1_000_000) (us mod 1_000_000) in
  let n = ref (String.length s) in
  while s.[!n - 1] = '0' do
    decr n
  done;
  if s.[!n - 1] = '.' then decr n;
  String.sub s 0 !n

(* Shortest decimal that reads back as the same float. *)
let flo f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let pp_event ppf = function
  | Crash_host { host; at } ->
      Format.fprintf ppf "crash:%s@%s" host (secs at)
  | Reboot_host { host; at } ->
      Format.fprintf ppf "reboot:%s@%s" host (secs at)
  | Loss_window { p; start; stop } ->
      Format.fprintf ppf "loss:%s@%s-%s" (flo p) (secs start) (secs stop)
  | Partition_bridge { start; stop } ->
      Format.fprintf ppf "partition@%s-%s" (secs start) (secs stop)
  | Slow_host { host; factor; start; stop } ->
      Format.fprintf ppf "slow:%sx%s@%s-%s" host (flo factor) (secs start)
        (secs stop)
  | Flaky_host { host; start; stop } ->
      Format.fprintf ppf "flaky:%s@%s-%s" host (secs start) (secs stop)
  | Crash_rack { hosts; at } ->
      Format.fprintf ppf "crashrack:%s@%s" (String.concat "+" hosts) (secs at)

let pp_plan ppf plan =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
    pp_event ppf plan

(* {2 Parsing}

   One event per ';'-separated clause, times in (virtual) seconds:

     crash:ws2@4.5        reboot:ws2@9
     loss:0.02@2-10       partition@3-6        slow:ws1x4@0-20 *)

let parse_err fmt = Printf.ksprintf (fun m -> Error m) fmt

let float_of spec s =
  match float_of_string_opt (String.trim s) with
  | Some f -> Ok f
  | None -> parse_err "fault %S: %S is not a number" spec s

let time_of spec s =
  Result.bind (float_of spec s) (fun t ->
      if t < 0. then
        parse_err "fault %S: time %g is negative (times count seconds from \
                   simulation start)"
          spec t
      else Ok (Time.of_sec t))

let span2 spec s =
  match String.split_on_char '-' (String.trim s) with
  | [ a; b ] ->
      Result.bind (float_of spec a) (fun start ->
          Result.bind (float_of spec b) (fun stop ->
              if start < 0. then
                parse_err "fault %S: window start %g is negative (times \
                           count seconds from simulation start)"
                  spec start
              else if stop < start then
                parse_err "fault %S: window %s runs backwards — stop %g \
                           must be after start %g"
                  spec s stop start
              else if stop = start then
                parse_err "fault %S: window %s is empty — stop %g must be \
                           strictly after start %g"
                  spec s stop start
              else Ok (Time.of_sec start, Time.of_sec stop)))
  | _ -> parse_err "fault %S: expected T1-T2, got %S" spec s

let parse_clause spec =
  let kind, arg =
    (* A clause is KIND:ARG, except 'partition@T1-T2' has no colon — split
       on whichever of ':' / '@' comes first. *)
    let cut i = (String.sub spec 0 i, String.sub spec (i + 1) (String.length spec - i - 1)) in
    match (String.index_opt spec ':', String.index_opt spec '@') with
    | Some i, Some j when j < i -> cut j
    | Some i, _ -> cut i
    | None, Some j -> cut j
    | None, None -> (spec, "")
  in
  let host_at verb k =
    match String.split_on_char '@' arg with
    | [ host; at ] when String.trim host <> "" ->
        Result.map (fun t -> k (String.trim host) t) (time_of spec at)
    | _ -> parse_err "fault %S: expected %s:HOST@T" spec verb
  in
  let host_window verb k =
    match String.split_on_char '@' arg with
    | [ host; w ] when String.trim host <> "" ->
        Result.map
          (fun (start, stop) -> k (String.trim host) start stop)
          (span2 spec w)
    | _ -> parse_err "fault %S: expected %s:HOST@T1-T2" spec verb
  in
  match String.trim kind with
  | "crash" -> host_at "crash" (fun host at -> Crash_host { host; at })
  | "reboot" -> host_at "reboot" (fun host at -> Reboot_host { host; at })
  | "loss" -> (
      match String.split_on_char '@' arg with
      | [ p; w ] ->
          Result.bind (float_of spec p) (fun p ->
              if p < 0. || p > 1. then
                parse_err "fault %S: loss probability %g out of [0,1]" spec p
              else
                Result.map
                  (fun (start, stop) -> Loss_window { p; start; stop })
                  (span2 spec w))
      | _ -> parse_err "fault %S: expected loss:P@T1-T2" spec)
  | "partition" -> (
      (* Both 'partition@T1-T2' and 'partition:T1-T2'. Only rewrite the
         error when the window's very shape is wrong — a well-shaped but
         invalid window (backwards, empty, negative) keeps span2's
         message, which says what to fix. *)
      match String.split_on_char '-' (String.trim arg) with
      | [ _; _ ] ->
          Result.map
            (fun (start, stop) -> Partition_bridge { start; stop })
            (span2 spec arg)
      | _ -> parse_err "fault %S: expected partition@T1-T2" spec)
  | "slow" -> (
      match String.split_on_char '@' arg with
      | [ hf; w ] -> (
          match String.rindex_opt hf 'x' with
          | Some i ->
              let host = String.trim (String.sub hf 0 i) in
              let f = String.sub hf (i + 1) (String.length hf - i - 1) in
              Result.bind (float_of spec f) (fun factor ->
                  if factor < 1. then
                    parse_err "fault %S: slowdown factor %g < 1 — the \
                               factor multiplies execution time, so it \
                               must be at least 1 (1 is nominal speed)"
                      spec factor
                  else if host = "" then
                    parse_err "fault %S: missing host" spec
                  else
                    Result.map
                      (fun (start, stop) ->
                        Slow_host { host; factor; start; stop })
                      (span2 spec w))
          | None -> parse_err "fault %S: expected slow:HOSTxF@T1-T2" spec)
      | _ -> parse_err "fault %S: expected slow:HOSTxF@T1-T2" spec)
  | "flaky" ->
      host_window "flaky" (fun host start stop ->
          Flaky_host { host; start; stop })
  | "crashrack" -> (
      match String.split_on_char '@' arg with
      | [ hs; at ] -> (
          let hosts = List.map String.trim (String.split_on_char '+' hs) in
          if List.exists (String.equal "") hosts then
            parse_err "fault %S: expected crashrack:HOST+HOST+...@T" spec
          else
            match hosts with
            | [] | [ _ ] ->
                parse_err "fault %S: a rack crash is correlated — name at \
                           least two hosts (use crash:HOST@T for one)"
                  spec
            | _ ->
                Result.map (fun at -> Crash_rack { hosts; at })
                  (time_of spec at))
      | _ -> parse_err "fault %S: expected crashrack:HOST+HOST+...@T" spec)
  | k -> parse_err "fault %S: unknown kind %S" spec k

let parse s =
  let clauses =
    String.split_on_char ';' s
    |> List.map String.trim
    |> List.filter (fun c -> c <> "")
  in
  if clauses = [] then Error "empty fault plan"
  else
    List.fold_left
      (fun acc c ->
        Result.bind acc (fun evs ->
            Result.map (fun e -> e :: evs) (parse_clause c)))
      (Ok []) clauses
    |> Result.map List.rev

(* {2 Installation}

   The plan is compiled onto the engine as ordinary scheduled events.
   Faults cannot depend on the cluster (the cluster depends on faults to
   accept a plan at creation), so each action is a callback the cluster
   wires to the right subsystem. *)

type hooks = {
  h_crash : string -> unit;
  h_reboot : string -> unit;
  h_loss : float -> unit;  (** Set the cluster-wide frame-loss probability. *)
  h_base_loss : unit -> float;
      (** The probability to restore when a loss window closes. *)
  h_partition : up:bool -> unit;
      (** Sever ([up:false]) or heal ([up:true]) the inter-segment bridge. *)
  h_slow : string -> float -> unit;
}

type t = {
  mutable injected : int;
  fired : (string, int ref) Hashtbl.t;  (** Actions fired, per kind. *)
}

let injected t = t.injected

let fired_counts t =
  List.filter_map
    (fun k ->
      match Hashtbl.find_opt t.fired k with
      | Some r -> Some (k, !r)
      | None -> None)
    all_kinds

(* Deterministic per-host churn stream for [Flaky_host]: a tiny LCG
   seeded from the host name alone, so the same plan produces the same
   churn regardless of cluster seed or installation order. *)
let churn_stream host =
  let state = ref (Hashtbl.hash (host, "flaky") land 0xffffff) in
  fun () ->
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    float_of_int !state /. float_of_int 0x40000000

let install eng trc hooks plan =
  let t = { injected = 0; fired = Hashtbl.create 8 } in
  let fire kind fmt =
    Format.kasprintf
      (fun detail ->
        t.injected <- t.injected + 1;
        (match Hashtbl.find_opt t.fired kind with
        | Some r -> incr r
        | None -> Hashtbl.replace t.fired kind (ref 1));
        if Tracer.enabled trc then
          Tracer.emit trc (Fault_injected { kind; detail }))
      fmt
  in
  let at when_ f = Engine.post eng ~at:when_ f in
  List.iter
    (function
      | Crash_host { host; at = when_ } ->
          at when_ (fun () ->
              fire "crash" "%s" host;
              hooks.h_crash host)
      | Reboot_host { host; at = when_ } ->
          at when_ (fun () ->
              fire "reboot" "%s" host;
              hooks.h_reboot host)
      | Loss_window { p; start; stop } ->
          at start (fun () ->
              fire "loss" "window opens: p=%.4f" p;
              hooks.h_loss p);
          at stop (fun () ->
              let base = hooks.h_base_loss () in
              fire "loss" "window closes: p=%.4f" base;
              hooks.h_loss base)
      | Partition_bridge { start; stop } ->
          at start (fun () ->
              fire "partition" "bridge severed";
              hooks.h_partition ~up:false);
          at stop (fun () ->
              fire "partition" "bridge healed";
              hooks.h_partition ~up:true)
      | Slow_host { host; factor; start; stop } ->
          at start (fun () ->
              fire "slow" "%s x%.1f" host factor;
              hooks.h_slow host factor);
          at stop (fun () ->
              fire "slow" "%s ends" host;
              hooks.h_slow host 1.0)
      | Flaky_host { host; start; stop } ->
          (* Intermittent churn: crash/reboot cycles with seeded
             down-times of 300 ms–1.5 s and up-times of 500 ms–2.5 s,
             clipped to the window. Every crash is paired with a reboot
             no later than [stop], so the host always ends the window
             up. *)
          let next = churn_stream host in
          let cursor = ref start in
          while Time.(!cursor < stop) do
            let crash_t = !cursor in
            let down =
              Time.add (Time.of_ms 300.) (Time.scale (Time.of_ms 1200.) (next ()))
            in
            let reboot_t = Time.min (Time.add crash_t down) stop in
            at crash_t (fun () ->
                fire "flaky" "%s down" host;
                hooks.h_crash host);
            at reboot_t (fun () ->
                fire "flaky" "%s up" host;
                hooks.h_reboot host);
            let up =
              Time.add (Time.of_ms 500.) (Time.scale (Time.of_ms 2000.) (next ()))
            in
            cursor := Time.add reboot_t up
          done
      | Crash_rack { hosts; at = when_ } ->
          at when_ (fun () ->
              fire "crashrack" "%s" (String.concat "+" hosts);
              List.iter hooks.h_crash hosts))
    plan;
  t
