(** Building simulated V clusters.

    The paper's installation: a set of diskless SUN workstations (2 MB
    RAM each) and server machines on one 10 Mbit Ethernet. A cluster
    bundles the engine, network, file server (holding every program
    image), and per-workstation kernel + program manager + display
    server, all seeded deterministically. *)

type workstation = {
  ws_index : int;
  ws_segment : int;  (** 0, or 1 for hosts behind the bridge. *)
  ws_kernel : Kernel.t;
  mutable ws_pm : Program_manager.t;
      (** Replaced when a fault-plan reboot recreates the machine
          services. *)
  mutable ws_display : Display_server.t;  (** Likewise. *)
}

type t

val create :
  ?seed:int ->
  ?workstations:int ->
  ?bridged:int ->
  ?bridge_delay:Time.span ->
  ?memory_bytes:int ->
  ?cfg:Config.t ->
  ?net_config:Ethernet.config ->
  ?disk_us_per_kb:int ->
  ?trace:bool ->
  ?faults:Faults.plan ->
  unit ->
  t
(** Build a cluster: one dedicated file-server machine plus
    [workstations] (default 6) workstations named ["ws0"], ["ws1"], ...
    All program images from {!Programs.all} are published, along with
    each program's input file. [trace] (default false) enables the
    cluster-wide tracer.

    [bridged] (default 0) moves the {e last} that-many workstations onto
    a second Ethernet segment joined to the first by a store-and-forward
    bridge with [bridge_delay] (default 2 ms) per frame — the first step
    toward the internet environment Section 6 leaves as future work. The
    file server stays on segment 0.

    [disk_us_per_kb] overrides the file server's media speed (default
    the paper-calibrated 300 us/KB) — scale-out benches provision
    modern storage so the single server loop is not the whole
    experiment.

    [faults] compiles a {!Faults.plan} onto the engine: crashes hit
    workstation kernels, reboots recreate machine services, loss windows
    apply cluster-wide, partitions sever the bridge, slowdowns scale a
    host's CPU. Raises [Invalid_argument] for a plan naming an unknown
    workstation or partitioning an unbridged cluster. *)

val engine : t -> Engine.t
val net : t -> Packet.t Ethernet.t
val cfg : t -> Config.t

val directory : t -> Directory.t
(** The logical-host to kernel registry program bodies resolve through. *)

val tracer : t -> Tracer.t
val rng : t -> Rng.t
(** A fresh independent stream per call. *)

val file_server : t -> File_server.t
val name_server : t -> Name_server.t

val faults : t -> Faults.t option
(** The installed fault plan, if the cluster was created with one. *)

val enable_health : ?config:Health.config -> t -> Health.t
(** Start the cluster failure detector (idempotent): probers run on the
    file-server machine — fault plans only target workstations, so the
    observer never crashes — watching every workstation. The view is
    attached to every program manager (including ones recreated by
    fault-plan reboots) and to every {!context} created afterwards. *)

val health : t -> Health.t option
(** The running failure detector, if {!enable_health} was called. *)

val placement : t -> Placement.t
(** The cluster's shared placement policy instance, resolved from
    [cfg.placement] at creation. Under a pod-based policy every
    program manager has joined its {!Ids.pod_group} and one gossip
    daemon per pod (observing from the file-server machine, like the
    failure detector) keeps the policy's pod load summaries fresh.
    Threaded into every {!context}. *)

val size : t -> int
val workstation : t -> int -> workstation
val workstations : t -> workstation list
val find_workstation : t -> string -> workstation option

val env_for : t -> workstation -> Env.t
(** The standard execution environment for programs invoked from this
    workstation: the global file server, the {e originating} display,
    and a warm name cache. *)

val user :
  t -> ws:int -> name:string -> (Kernel.t -> Ids.pid -> unit) -> Vproc.t
(** Spawn an interactive-user process (foreground priority, own logical
    host) on a workstation — the "command interpreter" from which
    programs are launched. The body gets the workstation's kernel and
    its own pid. Prefer {!shell} when the body talks to the
    {!Remote_exec} API. *)

val context : t -> ws:int -> self:Ids.pid -> Context.t
(** The execution context of a client process [self] running on
    workstation [ws]: that workstation's kernel, the cluster config, the
    standard environment from {!env_for}, and the failure-detector view
    when {!enable_health} has been called. *)

val shell :
  t -> ws:int -> name:string -> (Context.t -> unit) -> Vproc.t
(** {!user}, but the body receives its ready-made {!Context.t} — the
    idiom for driving {!Remote_exec} and [Serve]. *)

val run : ?until:Time.t -> ?max_steps:int -> t -> unit
(** Drive the simulation. Without [until], runs the event queue dry —
    note that kernels retransmit and servers wait forever, so most
    experiments pass a horizon. *)

val now : t -> Time.t
