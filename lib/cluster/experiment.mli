(** Canned experiment scenarios.

    Each function drives a cluster through one of the paper's measured
    scenarios and returns the numbers; the benchmark harness formats
    them into the paper's tables and [EXPERIMENTS.md] compares. All are
    deterministic given the cluster's seed. *)

(** {1 Replica job lists}

    Sweeps are embarrassingly parallel per replica: each measurement
    builds its own seeded cluster and shares nothing. Exposing
    reps-style measurements as job lists (rather than internal loops)
    lets callers hand them to [Parrun.run ~jobs] and merge results in
    index order. *)

val seeded_jobs : reps:int -> base_seed:int -> (seed:int -> 'a) -> (unit -> 'a) list
(** [seeded_jobs ~reps ~base_seed f] is the job list whose [i]-th job
    runs [f ~seed:(base_seed + i)]. Each job must build its own cluster
    from the seed — jobs share no state, so the list may run on any
    number of domains. *)

(** {1 Remote execution cost (Section 4.1, E-exec)} *)

type exec_result = {
  er_host : string;  (** Where the program ran. *)
  er_select : Time.span option;
  er_setup : Time.span;
  er_load : Time.span;
  er_total : Time.span;
}

val exec_result_to_json : exec_result -> Json_min.t
(** Flat object of millisecond timings plus the host — the uniform
    result shape the bench harness serializes directly (a missing
    selection, i.e. local execution, is [Null]). *)

val remote_exec :
  Cluster.t ->
  ?ws:int ->
  ?target:Remote_exec.target ->
  prog:string ->
  unit ->
  (exec_result, string) result
(** Execute one program (default [target = Any]) from a workstation's
    command interpreter and report the creation-cost split. Runs the
    cluster until the program has completed. *)

(** {1 Dirty-page generation (Table 4-1)} *)

val dirty_rate :
  Cluster.t ->
  prog:string ->
  window:Time.span ->
  reps:int ->
  ?warmup:Time.span ->
  unit ->
  (float, string) result
(** Run the program locally at foreground priority on an otherwise idle
    workstation and measure the mean KB of unique pages dirtied per
    window, paper-style: clear the dirty bits, let the program run one
    window, count. *)

val dirty_rate_jobs :
  ?workstations:int ->
  base_seed:int ->
  prog:string ->
  window:Time.span ->
  reps:int ->
  unit ->
  (unit -> (float, string) result) list
(** The parallel form of {!dirty_rate}: one job per rep, each measuring
    a single window on its own fresh cluster (seed [base_seed + i],
    [workstations] defaults to 2 — the sampler's host plus a spare).
    Average the [Ok] results for the replicated measurement. *)

(** {1 Migration (Sections 3-4, E-freeze)} *)

val migrate_program :
  Cluster.t ->
  ?ws:int ->
  ?strategy:Protocol.strategy ->
  ?run_for:Time.span ->
  ?extra_processes:int ->
  prog:string ->
  unit ->
  (Protocol.migration_outcome, string) result
(** Execute the program on an idle workstation ([@ *]), let it run
    [run_for] (default 3 s) so its working set is hot, then invoke
    [migrateprog] on its current host and report the outcome.
    [extra_processes] adds idle processes to the logical host first —
    the kernel-state-copy sweep (14 ms + 9 ms/object). *)

(** {1 Cluster-wide program survey}

    The paper's "suite of programs ... for querying and managing program
    execution on ... all workstations in the system" (Section 2). *)

val cluster_ps :
  Context.t -> (string * (string * Ids.lh_id * string) list) list
(** Ask every program manager (one group send) what it is running;
    returns (host, listing) pairs in response order. Blocking; call from
    a simulated process. *)

(** {1 Raw copy rate (E-copy)} *)

val copy_rate : Cluster.t -> bytes:int -> Time.span
(** Time one inter-host bulk transfer of the given size on an otherwise
    idle cluster — the paper's 3 s/MB address-space copy rate. *)

(** {1 Kernel operation latency (E-ovh)} *)

val kernel_op_latency : Cluster.t -> samples:int -> float
(** Mean local kernel-server round trip in microseconds. Comparing two
    clusters whose {!Os_params} differ isolates the 13 us frozen-test
    and 100 us group-lookup overheads. *)

(** {1 Pool-of-processors usage (Section 4.3, E-usage)} *)

type usage_params = {
  u_horizon : Time.span;
  u_job_rate_per_sec : float;  (** Cluster-wide submission rate. *)
  u_owner : Arrivals.Owner.params;
  u_progs : string list;  (** Job mix, cycled through. *)
}

val default_usage_params : usage_params
(** 10 simulated minutes, one job every ~10 s, default owner behaviour,
    a compile-and-tex mix. *)

type usage_stats = {
  us_submitted : int;
  us_honored : int;  (** Found an idle workstation. *)
  us_refused : int;  (** Nobody volunteered. *)
  us_completed : int;
  us_preemptions : int;  (** Guests migrated away by returning owners. *)
  us_preempt_destroyed : int;  (** Guests destroyed for lack of a host. *)
  us_mean_idle : float;  (** Mean workstation CPU idleness. *)
  us_owner_active_fraction : float;
  us_mean_freeze_ms : float;  (** Across preemption migrations. *)
}

val usage : Cluster.t -> usage_params -> usage_stats
(** The full pool-of-processors scenario: owners come and go (pausing
    volunteering and reclaiming their machines via [migrateprog] when
    they return), jobs arrive Poisson and run "[@ *]". *)

val usage_to_json : usage_stats -> Json_min.t
(** Flat object mirroring {!usage_stats} field for field. *)

val pp_usage : Format.formatter -> usage_stats -> unit
