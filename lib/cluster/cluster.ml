type workstation = {
  ws_index : int;
  ws_segment : int;
  ws_kernel : Kernel.t;
  mutable ws_pm : Program_manager.t;
  mutable ws_display : Display_server.t;
}

type t = {
  eng : Engine.t;
  c_net : Packet.t Ethernet.t;
  c_far : Packet.t Ethernet.t; (* == c_net when unbridged *)
  c_cfg : Config.t;
  c_dir : Directory.t;
  c_tracer : Tracer.t;
  c_rng : Rng.t;
  c_fs : File_server.t;
  c_ns : Name_server.t;
  c_fs_kernel : Kernel.t;
  stations : workstation array;
  c_placement : Placement.t;
  mutable c_faults : Faults.t option;
  mutable c_health : Health.t option;
}

let engine t = t.eng
let net t = t.c_net
let cfg t = t.c_cfg
let directory t = t.c_dir
let tracer t = t.c_tracer
let rng t = Rng.split t.c_rng
let file_server t = t.c_fs
let name_server t = t.c_ns
let faults t = t.c_faults
let health t = t.c_health
let placement t = t.c_placement
let size t = Array.length t.stations
let workstation t i = t.stations.(i)
let workstations t = Array.to_list t.stations

let find_workstation t name =
  List.find_opt
    (fun ws -> String.equal (Kernel.host_name ws.ws_kernel) name)
    (workstations t)

(* Wire a fault plan's actions onto this cluster's subsystems. Host
   names are validated up front so a typo fails at construction, not
   mid-run. *)
let install_faults t plan =
  let ws_of host =
    match find_workstation t host with
    | Some ws -> ws
    | None -> invalid_arg (Printf.sprintf "Cluster: no workstation %S" host)
  in
  List.iter
    (function
      | Faults.Crash_host { host; _ }
      | Faults.Reboot_host { host; _ }
      | Faults.Slow_host { host; _ }
      | Faults.Flaky_host { host; _ } ->
          ignore (ws_of host)
      | Faults.Crash_rack { hosts; _ } ->
          List.iter (fun h -> ignore (ws_of h)) hosts
      | Faults.Loss_window _ -> ()
      | Faults.Partition_bridge _ ->
          if t.c_far == t.c_net then
            invalid_arg "Cluster: partition fault on an unbridged cluster")
    plan;
  let base_loss = Ethernet.loss t.c_net in
  let hooks =
    {
      (* Flaky-host churn and overlapping plans can ask to crash an
         already-down (or reboot an already-up) machine; the hooks are
         idempotent so the plan need not track kernel state. *)
      Faults.h_crash =
        (fun host ->
          let k = (ws_of host).ws_kernel in
          if Kernel.running k then Kernel.shutdown k);
      h_reboot =
        (fun host ->
          let ws = ws_of host in
          let k = ws.ws_kernel in
          if not (Kernel.running k) then begin
            Kernel.reboot k;
            (* The machine services died with the crash; a cold boot
               brings fresh ones up under the preserved well-known
               pids. *)
            ws.ws_pm <-
              Program_manager.create k ~cfg:t.c_cfg ~directory:t.c_dir
                ~rng:(Rng.split t.c_rng);
            Program_manager.set_health ws.ws_pm t.c_health;
            (* A rebooted manager must rejoin its pod's scheduling
               group — group membership died with the old process. *)
            (match Placement.pod_of t.c_placement ~host with
            | Some pod -> Program_manager.join_pod ws.ws_pm ~pod
            | None -> ());
            ws.ws_display <- Display_server.create k;
            Name_server.register_direct t.c_ns
              ~name:(host ^ ":display")
              (Display_server.pid ws.ws_display)
          end);
      h_loss = (fun p -> Ethernet.set_loss t.c_net p);
      h_base_loss = (fun () -> base_loss);
      h_partition =
        (fun ~up ->
          if up then Ethernet.heal_bridge t.c_net t.c_far
          else Ethernet.sever_bridge t.c_net t.c_far);
      h_slow =
        (fun host f -> Cpu.set_slowdown (Kernel.cpu (ws_of host).ws_kernel) f);
    }
  in
  Faults.install t.eng t.c_tracer hooks plan

(* Pod load gossip: one daemon per pod, observing from the file-server
   machine like the failure detector (fault plans only crash
   workstations, so the observers survive any churn). Each cycle —
   seeded interval plus jitter, like Health probes — multicasts the
   ordinary Pm_list_programs survey to the pod's scheduling group and
   folds the replies (total guest programs, idle-host count) into the
   placement policy's EWMA summaries. No new protocol messages. *)
let gossip_interval = Time.of_sec 1.
let gossip_jitter = Time.of_ms 150.
let gossip_window = Time.of_ms 200.

let start_gossip t =
  let p = t.c_placement in
  let eng = t.eng in
  let fsk = t.c_fs_kernel in
  for pod = 0 to Placement.pod_count p - 1 do
    let rng = Rng.split t.c_rng in
    let lh = Kernel.create_logical_host fsk ~priority:Cpu.Foreground in
    let self = Vproc.pid (Kernel.create_process fsk lh) in
    ignore
      (Proc.spawn eng
         ~name:(Printf.sprintf "gossip-pod%d" pod)
         (fun () ->
           let rec loop () =
             Proc.sleep eng
               (Time.add gossip_interval
                  (Rng.uniform_span rng Time.zero gossip_jitter));
             let c =
               Kernel.send_group fsk ~src:self ~group:(Ids.pod_group pod)
                 (Message.make Protocol.Pm_list_programs)
             in
             let replies = Kernel.collect_within fsk c ~window:gossip_window in
             let queue, idle =
               List.fold_left
                 (fun (q, i) (_, (m : Message.t)) ->
                   match m.Message.body with
                   | Protocol.Pm_programs { programs; _ } ->
                       let n = List.length programs in
                       (q + n, if n = 0 then i + 1 else i)
                   | _ -> (q, i))
                 (0, 0) replies
             in
             Placement.note_pod_load p ~pod ~queue ~idle;
             loop ()
           in
           loop ()))
  done

let create ?(seed = 1985) ?(workstations = 6) ?(bridged = 0)
    ?(bridge_delay = Time.of_ms 2.) ?(memory_bytes = 2 * 1024 * 1024)
    ?(cfg = Config.default) ?(net_config = Ethernet.default_config)
    ?disk_us_per_kb ?(trace = false) ?faults ()  =
  assert (bridged >= 0 && bridged <= workstations);
  (* Fresh id/txn sequences per cluster: every replica then produces
     identical internal identifiers (and so identical Hashtbl layouts
     and iteration orders) no matter which domain runs it — the
     invariant behind byte-identical [-j 1] vs [-j N] sweep output. *)
  Proc.reset_ids ();
  Kernel.reset_txn_ids ();
  Address_space.reset_ids ();
  let eng = Engine.create () in
  let c_rng = Rng.create seed in
  (* The tracer exists before the networks so they can emit typed frame
     events; it consumes no randomness, so creating it early does not
     perturb the RNG split sequence. *)
  let c_tracer = Tracer.create eng in
  Tracer.set_enabled c_tracer trace;
  let c_net =
    Ethernet.create ~config:net_config ~tracer:c_tracer ~seg:0 eng
      (Rng.split c_rng)
  in
  (* An optional second segment behind a store-and-forward bridge. *)
  let far_net =
    if bridged = 0 then c_net
    else begin
      let n =
        Ethernet.create ~config:net_config ~tracer:c_tracer ~seg:1 eng
          (Rng.split c_rng)
      in
      Ethernet.bridge c_net n ~forward_delay:bridge_delay;
      n
    end
  in
  let alloc = Ids.Lh_allocator.create () in
  let c_dir = Directory.of_kernels () in
  let boot_kernel ?(net = c_net) ~station ~host_name ~memory () =
    let k =
      Kernel.create ~engine:eng ~rng:(Rng.split c_rng) ~tracer:c_tracer
        ~params:cfg.Config.os ~net ~station:(Addr.of_int station) ~host_name
        ~allocator:alloc ~memory_bytes:memory
    in
    Directory.register c_dir k;
    k
  in
  (* Station 0 is the server machine: bigger memory, no program manager
     volunteering (it is not somebody's workstation). *)
  let fs_kernel =
    boot_kernel ~station:0 ~host_name:"fileserver" ~memory:(16 * 1024 * 1024)
      ()
  in
  let c_fs = File_server.create ?disk_us_per_kb fs_kernel ~name:"fileserver" in
  let c_ns = Name_server.create fs_kernel ~name:"nameserver" in
  Programs.publish_images c_fs;
  List.iter
    (fun spec ->
      File_server.add_file c_fs
        ~path:(spec.Programs.prog_name ^ ".in")
        ~bytes:(64 * 1024))
    Programs.all;
  let stations =
    Array.init workstations (fun i ->
        let host_name = Printf.sprintf "ws%d" i in
        let segment = if i >= workstations - bridged then 1 else 0 in
        let net = if segment = 1 then far_net else c_net in
        let k =
          boot_kernel ~net ~station:(i + 1) ~host_name ~memory:memory_bytes ()
        in
        let pm =
          Program_manager.create k ~cfg ~directory:c_dir ~rng:(Rng.split c_rng)
        in
        let d = Display_server.create k in
        Name_server.register_direct c_ns ~name:(host_name ^ ":display")
          (Display_server.pid d);
        { ws_index = i; ws_segment = segment; ws_kernel = k; ws_pm = pm; ws_display = d })
  in
  let c_placement = Placement.of_config cfg in
  let pod_size = Placement.pod_size c_placement in
  if pod_size > 0 then
    Array.iter
      (fun ws ->
        let pod = ws.ws_index / pod_size in
        Program_manager.join_pod ws.ws_pm ~pod;
        Placement.register_host c_placement
          ~host:(Kernel.host_name ws.ws_kernel)
          ~pod)
      stations;
  let t =
    {
      eng;
      c_net;
      c_far = far_net;
      c_cfg = cfg;
      c_dir;
      c_tracer;
      c_rng;
      c_fs;
      c_ns;
      c_fs_kernel = fs_kernel;
      stations;
      c_placement;
      c_faults = None;
      c_health = None;
    }
  in
  if pod_size > 0 then start_gossip t;
  (match faults with
  | None -> ()
  | Some plan -> t.c_faults <- Some (install_faults t plan));
  t

let env_for t ws =
  Env.make
    ~name_server:(Name_server.pid t.c_ns)
    ~name_cache:
      [
        ("fileserver", File_server.pid t.c_fs);
        ("nameserver", Name_server.pid t.c_ns);
      ]
    ~file_server:(File_server.pid t.c_fs)
    ~display:(Display_server.pid ws.ws_display)
    ~origin_host:(Kernel.host_name ws.ws_kernel)
    ()

let user t ~ws ~name body =
  let w = t.stations.(ws) in
  let lh = Kernel.create_logical_host w.ws_kernel ~priority:Cpu.Foreground in
  Kernel.spawn_process w.ws_kernel lh ~name (fun vp ->
      body w.ws_kernel (Vproc.pid vp))

(* The failure detector observes from the file server: fault plans only
   name workstations, so the observer itself never crashes and its view
   survives any churn the plan throws at the cluster. *)
let enable_health ?config t =
  match t.c_health with
  | Some h -> h
  | None ->
      let peers =
        List.map
          (fun ws ->
            ( Kernel.host_name ws.ws_kernel,
              Logical_host.id (Kernel.host_lh ws.ws_kernel) ))
          (workstations t)
      in
      let h = Health.start ?config t.c_fs_kernel ~peers in
      t.c_health <- Some h;
      Array.iter
        (fun ws -> Program_manager.set_health ws.ws_pm (Some h))
        t.stations;
      h

let context t ~ws ~self =
  let w = t.stations.(ws) in
  Context.make ?health:t.c_health ~placement:t.c_placement
    ~kernel:w.ws_kernel ~cfg:t.c_cfg ~self ~env:(env_for t w) ()

let shell t ~ws ~name body =
  user t ~ws ~name (fun _k self -> body (context t ~ws ~self))

let run ?until ?max_steps t = Engine.run ?until ?max_steps t.eng

let now t = Engine.now t.eng
