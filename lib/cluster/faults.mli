(** Declarative fault injection.

    The paper's recovery story is stated, not measured: a copy that
    "fails due to lack of acknowledgement" aborts the migration, stale
    bindings are re-queried, reservations are abandoned. This module
    makes those paths exercisable: a {e plan} is a seeded, deterministic
    schedule of fault events compiled onto the simulation engine at
    cluster creation ([Cluster.create ?faults]), so a scenario with a
    mid-migration destination crash, a lossy window, and a bridge
    partition replays identically under one seed.

    Events:
    - [Crash_host]: the workstation's kernel is shut down — station
      detached, resident processes killed, volatile state lost.
    - [Reboot_host]: a previously crashed workstation cold-boots; its
      machine services are recreated, its former guests are gone.
    - [Loss_window]: cluster-wide frame-loss probability [p] between
      [start] and [stop], then back to the configured base loss.
    - [Partition_bridge]: the inter-segment bridge drops every frame
      between [start] and [stop] (no-op on unbridged clusters).
    - [Slow_host]: the workstation's CPU runs [factor] times slower
      between [start] and [stop] — a straggler, not a failure.
    - [Flaky_host]: seeded intermittent churn — the workstation crashes
      and reboots repeatedly between [start] and [stop] (down 0.3–1.5 s,
      up 0.5–2.5 s, derived deterministically from the host name), and
      always ends the window up.
    - [Crash_rack]: a correlated failure — every listed host crashes at
      the same instant, the way a rack power or switch loss takes out a
      group at once.

    Every fired event is traced under category ["fault"]. *)

type event =
  | Crash_host of { host : string; at : Time.t }
  | Reboot_host of { host : string; at : Time.t }
  | Loss_window of { p : float; start : Time.t; stop : Time.t }
  | Partition_bridge of { start : Time.t; stop : Time.t }
  | Slow_host of { host : string; factor : float; start : Time.t; stop : Time.t }
  | Flaky_host of { host : string; start : Time.t; stop : Time.t }
  | Crash_rack of { hosts : string list; at : Time.t }

type plan = event list

val kind_of_event : event -> string
(** The clause keyword: ["crash"], ["reboot"], ["loss"], ["partition"],
    ["slow"], ["flaky"] or ["crashrack"]. *)

val all_kinds : string list
(** Every clause keyword the parser knows, in a fixed order. *)

val declared_kinds : plan -> string list
(** The distinct kinds a plan uses, sorted — coverage reports compare
    these against {!fired_counts}. *)

val pp_event : Format.formatter -> event -> unit
val pp_plan : Format.formatter -> plan -> unit
(** Canonical rendering: exactly the [--faults] clause syntax, so
    [parse (Format.asprintf "%a" pp_plan plan) = Ok plan] for any valid
    plan (times print at full microsecond precision). *)

val parse : string -> (plan, string) result
(** Parse the [--faults] command-line syntax: ';'-separated clauses,
    times in virtual seconds.

    {v
crash:ws2@4.5            crash host ws2 at t=4.5s
reboot:ws2@9             reboot it at t=9s
loss:0.02@2-10           2% frame loss from t=2s to t=10s
partition@3-6            sever the bridge from t=3s to t=6s
slow:ws1x4@0-20          ws1 runs 4x slower from t=0s to t=20s
flaky:ws1@2-10           ws1 churns (crash/reboot) from t=2s to t=10s
crashrack:ws1+ws2+ws3@4  ws1, ws2 and ws3 all crash at t=4s
    v}

    Validation is strict and the messages say how to fix the clause:
    negative times, backwards or empty windows ([stop <= start]),
    slowdown factors below 1, loss probabilities outside [0,1], and
    single-host rack crashes are all rejected. *)

(** How plan events act on the world. {!install} cannot know the cluster
    (the cluster is built around its fault plan), so each action is a
    callback the cluster wires to the right subsystem. *)
type hooks = {
  h_crash : string -> unit;
  h_reboot : string -> unit;
  h_loss : float -> unit;  (** Set the cluster-wide frame-loss probability. *)
  h_base_loss : unit -> float;
      (** The {e configured} base probability, restored when a loss
          window closes (not the live value, which the window itself
          changed). *)
  h_partition : up:bool -> unit;
      (** Sever ([up:false]) or heal ([up:true]) the inter-segment
          bridge. *)
  h_slow : string -> float -> unit;
      (** Set a host's CPU slowdown factor; [1.0] restores nominal. *)
}

(** Typed trace event, one per injected action (window edges included). *)
type Tracer.event += Fault_injected of { kind : string; detail : string }

type t
(** An installed plan. *)

val install : Engine.t -> Tracer.t -> hooks -> plan -> t
(** Compile the plan onto the engine: every event becomes a scheduled
    callback. Call before running the simulation (all event times must
    be in the future). *)

val injected : t -> int
(** Fault actions fired so far — window events count twice (open and
    close). A determinism check across two same-seeded runs compares
    this alongside the kernels' statistics. *)

val fired_counts : t -> (string * int) list
(** Actions fired so far, per clause kind, in {!all_kinds} order;
    kinds that never fired are absent. The fuzz coverage report fails a
    run whose plan declares a kind that never fired. *)
